//! Multi-device data-parallel training with bit-exact gradient merging.
//!
//! The paper trains on a single Xeon Phi card; its natural scale-out step
//! (and the one its successors took) is data parallelism across several
//! coprocessors: each card holds a full parameter replica, computes
//! gradients on its shard of the mini-batch, and the shards are merged
//! through a modeled PCIe sync step ([`micdnn_sim::DeviceSet`]).
//!
//! # Canonical microblocks: N-invariant numerics by construction
//!
//! Naive sharding (`B/N` rows per device, per-shard mean gradients, then
//! averaging the shard means) changes floating-point association whenever
//! `N` changes, so an N-device run drifts from the single-device run. This
//! module instead fixes the summation *geometry* independently of the
//! device count:
//!
//! 1. The global batch `B` is split into `K` **canonical microblocks** by
//!    [`block_bounds`] — a pure function of `(B, K)`, never of `N`.
//! 2. Every per-example op (forward *and* backward) runs per block, so
//!    each op's operand shapes are the block's, not the shard's.
//! 3. Per-block partial gradients use `alpha = 1` (column *sums*, not
//!    means).
//! 4. The merge left-folds the partials **in canonical block order**
//!    ([`micdnn_kernels::vecops::block_merge`]: block 0 is copied, blocks
//!    `1..K` are added in order), then one final `scale(1/B)` recovers the
//!    batch mean.
//!
//! Devices own contiguous *ranges of blocks*; changing `N` (or dropping a
//! device mid-run) only changes which device computes which block — every
//! f32 operation, operand shape, and fold order is untouched. The result:
//! `N`-device training is **bitwise identical** to the same trainer at
//! `N = 1`, enforced by the proptests in `tests/shard_properties.rs`.
//!
//! RBM sampling stays N-invariant the same way: the per-step sampling
//! streams are allocated once at the master level (`cd_steps` streams per
//! batch regardless of `N`), and each block samples through
//! [`ExecCtx::bernoulli_at`] at its global element offset, so the sampled
//! bits per example are a pure function of `(seed, stream, row, column)`.
//!
//! # Timing model
//!
//! On a simulated context each device's shard is priced with
//! [`ExecCtx::run_deferred`]; the master clock advances by the *slowest*
//! device plus the modeled allreduce ([`DeviceSet::allreduce_time`] —
//! ring allreduce by default, host parameter-server as fallback).
//! [`DeviceSet::sync_fraction`] feeds the `BENCH_multidev.json` artifact.
//!
//! # Fault injection
//!
//! Two failpoints (feature `failpoints`, see [`crate::faults`]): a
//! `device.oom` drops one device and re-shards its blocks onto the
//! survivors (bit-identical by construction); a `link.drop` retries the
//! gradient sync, charging extra modeled time without touching numerics.
//!
//! Both recoveries happen *inside* a training leg, so they compose with
//! the supervisor's ladder for free: a [`crate::RunSupervisor`] leg that
//! loses a device mid-flight re-shards here, and if the same leg later
//! diverges, the rollback restores a [`CheckpointModel`] snapshot whose
//! device set reflects the survivors (the `TAG_MDP` record carries the
//! online mask), so replay stays bit-identical at any device count.

use crate::autoencoder::{AeScratch, SparseAutoencoder};
use crate::checkpoint::CheckpointModel;
use crate::exec::ExecCtx;
use crate::faults;
use crate::model_io::{
    bad, read_any_header, read_autoencoder_body, read_rbm_body, read_u64, save_autoencoder,
    save_rbm, write_header, write_u64, TAG_AE, TAG_MDP, TAG_RBM,
};
use crate::rbm::{Rbm, RbmScratch};
use crate::supervise::Recoverable;
use crate::train::UnsupervisedModel;
use micdnn_kernels::fused::kl_sparsity;
use micdnn_sim::{DeviceSet, EventKind, Link, SyncModel};
use micdnn_tensor::MatView;
use std::io::{self, Read, Write};

/// Hard cap on the device count a checkpoint may declare (a corrupt header
/// must not size allocations).
const MAX_DEVICES: u64 = 4096;

/// Splits `total` rows into `parts` contiguous ranges whose sizes differ
/// by at most one (the first `total % parts` ranges get the extra row).
///
/// Pure in `(total, parts)` — this is the invariant the bit-exactness of
/// multi-device training rests on: the canonical block geometry of a batch
/// never depends on how many devices will compute it. Ranges may be empty
/// when `total < parts`.
pub fn block_bounds(total: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts >= 1, "block_bounds needs at least one part");
    let base = total / parts;
    let rem = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < rem);
        out.push((lo, lo + sz));
        lo += sz;
    }
    debug_assert_eq!(lo, total);
    out
}

/// The non-empty canonical microblocks of a `batch`-row mini-batch.
pub(crate) fn canonical_blocks(batch: usize, k: usize) -> Vec<(usize, usize)> {
    block_bounds(batch, k.max(1))
        .into_iter()
        .filter(|&(lo, hi)| hi > lo)
        .collect()
}

/// A degenerate multi-device geometry, rejected before any shard setup or
/// [`block_bounds`] call can see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiDevConfigError {
    /// Zero devices: there is nothing to train on.
    NoDevices,
    /// Zero canonical microblocks: the batch cannot be split.
    NoBlocks,
    /// Fewer canonical blocks than devices: some devices could never own
    /// a block, so the geometry silently wastes them.
    FewerBlocksThanDevices {
        /// Configured canonical block count.
        blocks: usize,
        /// Configured device count.
        devices: usize,
    },
}

impl std::fmt::Display for MultiDevConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiDevConfigError::NoDevices => write!(f, "need at least one device"),
            MultiDevConfigError::NoBlocks => write!(f, "need at least one canonical block"),
            MultiDevConfigError::FewerBlocksThanDevices { blocks, devices } => write!(
                f,
                "canonical block count {blocks} is smaller than the device count {devices}; \
                 blocks must be >= devices so every device can own at least one block"
            ),
        }
    }
}

impl std::error::Error for MultiDevConfigError {}

/// Configuration of a multi-device data-parallel trainer.
#[derive(Debug, Clone)]
pub struct MultiDevConfig {
    /// Number of coprocessors in the set.
    pub devices: usize,
    /// Number of canonical microblocks `K` each global batch is split
    /// into. Must not change across runs that are compared bit-for-bit
    /// (it is persisted in checkpoints for exactly that reason).
    pub canonical_blocks: usize,
    /// Gradient synchronization strategy.
    pub sync: SyncModel,
    /// Per-device PCIe link model.
    pub link: Link,
    /// Modeled per-device memory capacity in bytes.
    pub mem_capacity: u64,
}

impl MultiDevConfig {
    /// `devices` coprocessors with the paper's card parameters: 8 canonical
    /// blocks, ring allreduce, PCIe gen-2 link, 8 GB per card.
    pub fn new(devices: usize) -> Self {
        assert!(devices >= 1, "need at least one device");
        MultiDevConfig {
            devices,
            canonical_blocks: 8,
            sync: SyncModel::RingAllReduce,
            link: Link::pcie_gen2(),
            mem_capacity: 8 << 30,
        }
    }

    /// Like [`MultiDevConfig::new`] + [`MultiDevConfig::with_blocks`], but
    /// returns a typed error on degenerate geometry instead of panicking —
    /// the front door for externally supplied device/block counts (the CLI
    /// routes through this).
    pub fn validated(devices: usize, blocks: usize) -> Result<Self, MultiDevConfigError> {
        if devices == 0 {
            return Err(MultiDevConfigError::NoDevices);
        }
        if blocks == 0 {
            return Err(MultiDevConfigError::NoBlocks);
        }
        let cfg = MultiDevConfig {
            canonical_blocks: blocks,
            ..MultiDevConfig::new(devices)
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the configured geometry, returning a typed error for any
    /// degenerate combination (`devices == 0`, `blocks == 0`,
    /// `blocks < devices`).
    pub fn validate(&self) -> Result<(), MultiDevConfigError> {
        if self.devices == 0 {
            return Err(MultiDevConfigError::NoDevices);
        }
        if self.canonical_blocks == 0 {
            return Err(MultiDevConfigError::NoBlocks);
        }
        if self.canonical_blocks < self.devices {
            return Err(MultiDevConfigError::FewerBlocksThanDevices {
                blocks: self.canonical_blocks,
                devices: self.devices,
            });
        }
        Ok(())
    }

    /// Overrides the canonical microblock count `K`.
    pub fn with_blocks(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one canonical block");
        self.canonical_blocks = k;
        self
    }

    /// Overrides the gradient synchronization strategy.
    pub fn with_sync(mut self, sync: SyncModel) -> Self {
        self.sync = sync;
        self
    }

    /// Overrides the per-device link model.
    pub fn with_link(mut self, link: Link) -> Self {
        self.link = link;
        self
    }

    /// The per-device memory budget the certifier proves peak residency
    /// against — the modeled card capacity ([`MultiDevConfig::mem_capacity`],
    /// 8 GB for the paper's Xeon Phi).
    pub fn mem_budget(&self) -> u64 {
        self.mem_capacity
    }

    fn device_set(&self) -> DeviceSet {
        DeviceSet::new(self.devices, self.link, self.mem_capacity, self.sync)
    }
}

/// Everything a multi-device checkpoint stores on top of the inner model:
/// the device geometry, the per-device RNG cursors, and which devices had
/// already dropped offline.
#[derive(Debug)]
pub struct MultiDevState {
    /// Devices in the set at save time.
    pub devices: usize,
    /// Canonical microblock count the run was using.
    pub canonical_blocks: usize,
    /// Per-device `(seed, cursor)` sampler positions at save time.
    pub dev_rng: Vec<(u64, u64)>,
    /// Which devices were offline at save time.
    pub offline: Vec<bool>,
    /// The replicated model.
    pub inner: MultiDevModelState,
}

/// The model replica embedded in a multi-device checkpoint.
#[derive(Debug)]
pub enum MultiDevModelState {
    /// Sparse-autoencoder replica.
    Ae(SparseAutoencoder),
    /// RBM replica.
    Rbm(Rbm),
}

/// Reads a `TAG_MDP` record body (header already consumed).
pub(crate) fn read_multidev_body(r: &mut impl Read) -> io::Result<MultiDevState> {
    let n = read_u64(r)?;
    if n == 0 || n > MAX_DEVICES {
        return Err(bad(format!(
            "device count {n} out of range (1..={MAX_DEVICES})"
        )));
    }
    let k = read_u64(r)?;
    if k == 0 || k > 1 << 20 {
        return Err(bad(format!("canonical block count {k} out of range")));
    }
    let mut dev_rng = Vec::with_capacity(n as usize);
    let mut offline = Vec::with_capacity(n as usize);
    for i in 0..n {
        let seed = read_u64(r)?;
        let cursor = read_u64(r)?;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let off = match flag[0] {
            0 => false,
            1 => true,
            t => return Err(bad(format!("bad offline flag {t} for device {i}"))),
        };
        dev_rng.push((seed, cursor));
        offline.push(off);
    }
    if offline.iter().all(|&o| o) {
        return Err(bad("checkpoint declares every device offline"));
    }
    let inner = match read_any_header(r)? {
        TAG_AE => MultiDevModelState::Ae(read_autoencoder_body(r)?),
        TAG_RBM => MultiDevModelState::Rbm(read_rbm_body(r)?),
        t => {
            return Err(bad(format!(
                "multi-device record embeds unknown model tag {t}"
            )))
        }
    };
    Ok(MultiDevState {
        devices: n as usize,
        canonical_blocks: k as usize,
        dev_rng,
        offline,
        inner,
    })
}

/// Writes the shared `TAG_MDP` prefix (geometry + per-device RNG cursors +
/// offline flags); the caller appends the inner model record.
fn write_multidev_prefix(
    w: &mut dyn Write,
    devset: &DeviceSet,
    canonical_blocks: usize,
    dev_rng: &[(u64, u64)],
) -> io::Result<()> {
    let mut w = w;
    write_header(&mut w, TAG_MDP)?;
    write_u64(&mut w, devset.len() as u64)?;
    write_u64(&mut w, canonical_blocks as u64)?;
    for (i, &(seed, cursor)) in dev_rng.iter().enumerate() {
        write_u64(&mut w, seed)?;
        write_u64(&mut w, cursor)?;
        w.write_all(&[u8::from(!devset.is_online(i))])?;
    }
    Ok(())
}

/// `device.oom` failpoint: drops the highest-numbered online device (never
/// the last one) and notes the incident. Returns whether a device dropped.
fn maybe_drop_device(devset: &mut DeviceSet, ctx: &ExecCtx) -> bool {
    if devset.online_count() > 1 && faults::fire("device.oom") {
        let victim = (0..devset.len())
            .rev()
            .find(|&i| devset.is_online(i))
            .expect("online device exists");
        devset.mark_offline(victim);
        ctx.note_incident(
            "device-oom",
            &format!(
                "device {victim} out of memory, dropped offline; its blocks re-land on {} survivor(s)",
                devset.online_count()
            ),
        );
        true
    } else {
        false
    }
}

/// Charges the step's modeled time to the master clock and the device set:
/// the slowest device's compute plus the gradient allreduce (with a
/// `link.drop` retry when armed). Returns nothing; numerics are untouched.
fn charge_step(
    devset: &mut DeviceSet,
    ctx: &ExecCtx,
    max_busy: f64,
    mut sync: f64,
    payload_bytes: u64,
) {
    if faults::fire("link.drop") {
        sync += devset.allreduce_time(payload_bytes);
        ctx.note_incident(
            "link-retry",
            &format!("gradient sync transfer ({payload_bytes} B) dropped; retried once"),
        );
    }
    ctx.charge_secs(max_busy, EventKind::Node, "multidev-shards");
    ctx.charge_secs(sync, EventKind::Sync, "multidev-allreduce");
    devset.record_step(max_busy, sync);
}

/// The indices of the online devices, in fixed id order.
fn online_devices(devset: &DeviceSet) -> Vec<usize> {
    (0..devset.len()).filter(|&i| devset.is_online(i)).collect()
}

// ---- sparse autoencoder --------------------------------------------------

/// A sparse autoencoder replicated across a [`DeviceSet`], trained
/// data-parallel with bit-exact canonical-block gradient merging.
///
/// Plugs into the chunked trainer through [`UnsupervisedModel`], into the
/// supervisor through [`Recoverable`], and into checkpoints through the
/// `TAG_MDP` container record. At `devices = 1` it runs the *same*
/// algorithm (same blocks, same fold), which is the reference the
/// equivalence tests pin every other `N` against.
#[derive(Debug)]
pub struct DataParallelAe {
    ae: SparseAutoencoder,
    cfg: MultiDevConfig,
    devset: DeviceSet,
    /// Per-device `(seed, cursor)` sampler positions after the last step
    /// each device participated in (all online devices advance in
    /// lockstep; an offline device's cursor freezes where it dropped).
    dev_rng: Vec<(u64, u64)>,
    /// One scratch per canonical block.
    scratch: Vec<AeScratch>,
    rho_acc: Vec<f32>,
    s_term: Vec<f32>,
    gw1_acc: Vec<f32>,
    gw2_acc: Vec<f32>,
    gb1_acc: Vec<f32>,
    gb2_acc: Vec<f32>,
}

impl DataParallelAe {
    /// Replicates `ae` across `cfg.devices` modeled coprocessors.
    pub fn new(ae: SparseAutoencoder, cfg: MultiDevConfig) -> Self {
        let devset = cfg.device_set();
        let (h, v) = (ae.config().n_hidden, ae.config().n_visible);
        DataParallelAe {
            dev_rng: vec![(0, 0); cfg.devices],
            devset,
            ae,
            rho_acc: vec![0.0; h],
            s_term: vec![0.0; h],
            gw1_acc: vec![0.0; h * v],
            gw2_acc: vec![0.0; v * h],
            gb1_acc: vec![0.0; h],
            gb2_acc: vec![0.0; v],
            scratch: Vec::new(),
            cfg,
        }
    }

    /// The replicated autoencoder.
    pub fn ae(&self) -> &SparseAutoencoder {
        &self.ae
    }

    /// Consumes the wrapper, returning the trained autoencoder.
    pub fn into_inner(self) -> SparseAutoencoder {
        self.ae
    }

    /// The device set (clocks, online flags, compute/sync accounting).
    pub fn device_set(&self) -> &DeviceSet {
        &self.devset
    }

    /// The multi-device configuration.
    pub fn config(&self) -> &MultiDevConfig {
        &self.cfg
    }

    /// Per-device `(seed, cursor)` sampler positions (what checkpoints
    /// persist).
    pub fn dev_rng(&self) -> &[(u64, u64)] {
        &self.dev_rng
    }

    /// Takes device `i` offline; its blocks re-land on the survivors with
    /// bit-identical results (the chaos harness and CLI demos use this).
    ///
    /// Dropping the last surviving device is a recoverable
    /// [`TrainError::Unrecoverable`], not a panic: a supervisor that loses
    /// its whole device set must be able to surface the failure and keep
    /// the process alive.
    pub fn mark_device_offline(&mut self, i: usize) -> Result<(), crate::train::TrainError> {
        mark_offline_checked(&mut self.devset, i)
    }

    /// Fraction of modeled step time spent in gradient synchronization.
    pub fn sync_fraction(&self) -> f64 {
        self.devset.sync_fraction()
    }
}

/// Shared fallible offline transition: refuses to drop the last surviving
/// device with a typed error instead of tripping the device set's panic.
fn mark_offline_checked(devset: &mut DeviceSet, i: usize) -> Result<(), crate::train::TrainError> {
    assert!(i < devset.len(), "device index {i} out of range");
    if devset.is_online(i) && devset.online_count() <= 1 {
        return Err(crate::train::TrainError::Unrecoverable {
            attempts: 0,
            last: format!(
                "cannot take device {i} offline: it is the last surviving device in the set"
            ),
        });
    }
    devset.mark_offline(i);
    Ok(())
}

impl UnsupervisedModel for DataParallelAe {
    fn input_dim(&self) -> usize {
        self.ae.config().n_visible
    }

    fn prepare(&mut self, max_batch: usize) {
        let k = self.cfg.canonical_blocks;
        let cap = max_batch.div_ceil(k).max(1);
        let need_new =
            self.scratch.len() != k || self.scratch.first().is_none_or(|s| s.capacity() < cap);
        if need_new {
            self.scratch = (0..k)
                .map(|_| AeScratch::new(self.ae.config(), cap))
                .collect();
        }
    }

    fn train_batch(&mut self, ctx: &ExecCtx, x: MatView<'_>, lr: f32) -> f64 {
        let b = x.rows();
        assert!(b > 0, "empty batch");
        assert!(!self.scratch.is_empty(), "prepare() not called");
        maybe_drop_device(&mut self.devset, ctx);

        let cfg = *self.ae.config();
        let blocks = canonical_blocks(b, self.cfg.canonical_blocks);
        let online = online_devices(&self.devset);
        let shards = block_bounds(blocks.len(), online.len());
        let mut busy = vec![0.0f64; self.devset.len()];
        let mut err = vec![0.0f64; blocks.len()];

        // Phase A (per device, per owned block): forward pass + per-block
        // hidden-activation column sums for the shared sparsity estimate.
        {
            let (ae, scratch) = (&self.ae, &mut self.scratch);
            for (j, &dev) in online.iter().enumerate() {
                let (klo, khi) = shards[j];
                if klo == khi {
                    continue;
                }
                let ((), secs) = ctx.run_deferred(|ctx| {
                    for k in klo..khi {
                        let (lo, hi) = blocks[k];
                        let bk = hi - lo;
                        let xk = x.rows_range(lo, hi);
                        let s = &mut scratch[k];
                        {
                            let mut a2 = s.a2.rows_range_mut(0, bk);
                            ctx.gemm(1.0, xk, false, ae.w1.view(), true, 0.0, &mut a2);
                            ctx.bias_sigmoid_rows(&ae.b1, &mut a2);
                        }
                        {
                            let a2v = s.a2.rows_range(0, bk);
                            let mut a3 = s.a3.rows_range_mut(0, bk);
                            ctx.gemm(1.0, a2v, false, ae.w2.view(), true, 0.0, &mut a3);
                            ctx.bias_sigmoid_rows(&ae.b2, &mut a3);
                        }
                        // Per-block column *sum* (not mean): scaled once
                        // after the canonical-order merge.
                        ctx.colsum(s.a2.rows_range(0, bk), &mut s.rho_hat);
                    }
                });
                busy[dev] += secs;
            }
        }

        // Sync 1: merge the sparsity statistics in canonical block order,
        // scale to the global batch mean, derive the shared penalty term.
        let inv_b = 1.0 / b as f32;
        {
            let parts: Vec<&[f32]> = self.scratch[..blocks.len()]
                .iter()
                .map(|s| s.rho_hat.as_slice())
                .collect();
            ctx.block_merge(&parts, &mut self.rho_acc);
        }
        ctx.scale(inv_b, &mut self.rho_acc);
        if cfg.sparsity_weight > 0.0 {
            kl_sparsity(
                cfg.sparsity_target,
                cfg.sparsity_weight,
                &self.rho_acc,
                &mut self.s_term,
            );
        } else {
            self.s_term.fill(0.0);
        }

        // Phase B (per device, per owned block): backward pass into
        // per-block partial gradients (`alpha = 1` sums throughout).
        {
            let (ae, scratch, s_term, err) = (&self.ae, &mut self.scratch, &self.s_term, &mut err);
            for (j, &dev) in online.iter().enumerate() {
                let (klo, khi) = shards[j];
                if klo == khi {
                    continue;
                }
                let ((), secs) = ctx.run_deferred(|ctx| {
                    for k in klo..khi {
                        let (lo, hi) = blocks[k];
                        let bk = hi - lo;
                        let xk = x.rows_range(lo, hi);
                        let s = &mut scratch[k];
                        {
                            let a3s = s.a3.rows_range(0, bk);
                            let mut d3 = s.delta3.rows_range_mut(0, bk);
                            ctx.delta_output(a3s.as_slice(), xk.as_slice(), d3.as_mut_slice());
                        }
                        ctx.gemm(
                            1.0,
                            s.delta3.rows_range(0, bk),
                            true,
                            s.a2.rows_range(0, bk),
                            false,
                            0.0,
                            &mut s.gw2.view_mut(),
                        );
                        ctx.colsum(s.delta3.rows_range(0, bk), &mut s.gb2);
                        {
                            let mut d2 = s.delta2.rows_range_mut(0, bk);
                            ctx.gemm(
                                1.0,
                                s.delta3.rows_range(0, bk),
                                false,
                                ae.w2.view(),
                                false,
                                0.0,
                                &mut d2,
                            );
                        }
                        {
                            let a2v = s.a2.rows_range(0, bk);
                            let mut d2 = s.delta2.rows_range_mut(0, bk);
                            ctx.bias_deriv_rows(s_term, a2v, &mut d2);
                        }
                        ctx.gemm(
                            1.0,
                            s.delta2.rows_range(0, bk),
                            true,
                            xk,
                            false,
                            0.0,
                            &mut s.gw1.view_mut(),
                        );
                        ctx.colsum(s.delta2.rows_range(0, bk), &mut s.gb1);
                        err[k] = ctx.frob_dist_sq(s.a3.rows_range(0, bk), xk);
                    }
                });
                busy[dev] += secs;
            }
        }

        // Sync 2: canonical-order gradient merge, one global scale, one
        // parameter update on the (replicated) master copy.
        let nb = blocks.len();
        macro_rules! merge {
            ($field:ident, $acc:ident) => {{
                let parts: Vec<&[f32]> = self.scratch[..nb]
                    .iter()
                    .map(|s| s.$field.as_slice())
                    .collect();
                ctx.block_merge(&parts, &mut self.$acc);
                ctx.scale(inv_b, &mut self.$acc);
            }};
        }
        merge!(gw1, gw1_acc);
        merge!(gw2, gw2_acc);
        merge!(gb1, gb1_acc);
        merge!(gb2, gb2_acc);
        ctx.sgd_step(
            lr,
            cfg.weight_decay,
            &self.gw1_acc,
            self.ae.w1.as_mut_slice(),
        );
        ctx.sgd_step(
            lr,
            cfg.weight_decay,
            &self.gw2_acc,
            self.ae.w2.as_mut_slice(),
        );
        ctx.sgd_step(lr, 0.0, &self.gb1_acc, &mut self.ae.b1);
        ctx.sgd_step(lr, 0.0, &self.gb2_acc, &mut self.ae.b2);

        // Modeled time: slowest device + two allreduces (sparsity stats,
        // gradients).
        let max_busy = busy.iter().cloned().fold(0.0, f64::max);
        let grad_bytes = cfg.param_bytes();
        let rho_bytes = (cfg.n_hidden * std::mem::size_of::<f32>()) as u64;
        let sync = self.devset.allreduce_time(rho_bytes) + self.devset.allreduce_time(grad_bytes);
        charge_step(&mut self.devset, ctx, max_busy, sync, grad_bytes);

        let state = ctx.rng_state();
        for &dev in &online {
            self.dev_rng[dev] = state;
        }

        err.iter().sum::<f64>() / (2.0 * b as f64)
    }

    fn resident_bytes(&self, max_batch: usize) -> u64 {
        // Per-device footprint: a full parameter replica + merge
        // accumulators + that device's share of the block scratch.
        let cfg = self.ae.config();
        let f = std::mem::size_of::<f32>() as u64;
        let shard = max_batch.div_ceil(self.devset.online_count().max(1));
        let temps = 2 * (shard * cfg.n_hidden + shard * cfg.n_visible) as u64 * f;
        cfg.param_bytes() * 2 + temps
    }

    fn save_state(&self, w: &mut dyn Write) -> io::Result<()> {
        write_multidev_prefix(w, &self.devset, self.cfg.canonical_blocks, &self.dev_rng)?;
        let mut w = w;
        save_autoencoder(&self.ae, &mut w)
    }
}

impl Recoverable for DataParallelAe {
    fn restore_state(&mut self, from: CheckpointModel) -> io::Result<()> {
        let CheckpointModel::MultiDev(state) = from else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot is not a multi-device record",
            ));
        };
        let MultiDevModelState::Ae(ae) = state.inner else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "multi-device snapshot holds an RBM, model is an autoencoder",
            ));
        };
        self.cfg.devices = state.devices;
        self.cfg.canonical_blocks = state.canonical_blocks;
        self.devset = self.cfg.device_set();
        for (i, &off) in state.offline.iter().enumerate() {
            if off {
                self.devset.mark_offline(i);
            }
        }
        self.dev_rng = state.dev_rng;
        let (h, v) = (ae.config().n_hidden, ae.config().n_visible);
        self.rho_acc = vec![0.0; h];
        self.s_term = vec![0.0; h];
        self.gw1_acc = vec![0.0; h * v];
        self.gw2_acc = vec![0.0; v * h];
        self.gb1_acc = vec![0.0; h];
        self.gb2_acc = vec![0.0; v];
        self.scratch.clear();
        self.ae = ae;
        Ok(())
    }
}

// ---- RBM -----------------------------------------------------------------

/// An RBM replicated across a [`DeviceSet`], trained data-parallel CD-k
/// with canonical-block statistics merging and N-invariant sampling.
#[derive(Debug)]
pub struct DataParallelRbm {
    rbm: Rbm,
    cfg: MultiDevConfig,
    devset: DeviceSet,
    dev_rng: Vec<(u64, u64)>,
    scratch: Vec<RbmScratch>,
    pos_acc: Vec<f32>,
    neg_acc: Vec<f32>,
    vis_pos_acc: Vec<f32>,
    vis_neg_acc: Vec<f32>,
    hid_pos_acc: Vec<f32>,
    hid_neg_acc: Vec<f32>,
}

impl DataParallelRbm {
    /// Replicates `rbm` across `cfg.devices` modeled coprocessors.
    pub fn new(rbm: Rbm, cfg: MultiDevConfig) -> Self {
        let devset = cfg.device_set();
        let (h, v) = (rbm.config().n_hidden, rbm.config().n_visible);
        DataParallelRbm {
            dev_rng: vec![(0, 0); cfg.devices],
            devset,
            rbm,
            pos_acc: vec![0.0; h * v],
            neg_acc: vec![0.0; h * v],
            vis_pos_acc: vec![0.0; v],
            vis_neg_acc: vec![0.0; v],
            hid_pos_acc: vec![0.0; h],
            hid_neg_acc: vec![0.0; h],
            scratch: Vec::new(),
            cfg,
        }
    }

    /// The replicated RBM.
    pub fn rbm(&self) -> &Rbm {
        &self.rbm
    }

    /// Consumes the wrapper, returning the trained RBM.
    pub fn into_inner(self) -> Rbm {
        self.rbm
    }

    /// The device set (clocks, online flags, compute/sync accounting).
    pub fn device_set(&self) -> &DeviceSet {
        &self.devset
    }

    /// The multi-device configuration.
    pub fn config(&self) -> &MultiDevConfig {
        &self.cfg
    }

    /// Per-device `(seed, cursor)` sampler positions.
    pub fn dev_rng(&self) -> &[(u64, u64)] {
        &self.dev_rng
    }

    /// Takes device `i` offline (bit-identical re-shard onto survivors).
    /// Dropping the last surviving device returns
    /// [`TrainError::Unrecoverable`](crate::train::TrainError::Unrecoverable)
    /// instead of panicking.
    pub fn mark_device_offline(&mut self, i: usize) -> Result<(), crate::train::TrainError> {
        mark_offline_checked(&mut self.devset, i)
    }

    /// Fraction of modeled step time spent in gradient synchronization.
    pub fn sync_fraction(&self) -> f64 {
        self.devset.sync_fraction()
    }
}

impl UnsupervisedModel for DataParallelRbm {
    fn input_dim(&self) -> usize {
        self.rbm.config().n_visible
    }

    fn prepare(&mut self, max_batch: usize) {
        let k = self.cfg.canonical_blocks;
        let cap = max_batch.div_ceil(k).max(1);
        let need_new =
            self.scratch.len() != k || self.scratch.first().is_none_or(|s| s.capacity() < cap);
        if need_new {
            self.scratch = (0..k)
                .map(|_| RbmScratch::new(self.rbm.config(), cap))
                .collect();
        }
    }

    fn train_batch(&mut self, ctx: &ExecCtx, x: MatView<'_>, lr: f32) -> f64 {
        let b = x.rows();
        assert!(b > 0, "empty batch");
        assert!(!self.scratch.is_empty(), "prepare() not called");
        maybe_drop_device(&mut self.devset, ctx);

        let cfg = *self.rbm.config();
        let blocks = canonical_blocks(b, self.cfg.canonical_blocks);
        let online = online_devices(&self.devset);
        let shards = block_bounds(blocks.len(), online.len());
        let mut busy = vec![0.0f64; self.devset.len()];
        let mut err = vec![0.0f64; blocks.len()];

        // One sampling stream per Gibbs step, reserved at the *master*
        // level before any device touches its shard: the stream count per
        // batch is a constant `cd_steps`, independent of the device count,
        // and each block samples at its global element offset.
        let streams: Vec<_> = (0..cfg.cd_steps).map(|_| ctx.next_stream()).collect();

        {
            let (rbm, scratch, err) = (&self.rbm, &mut self.scratch, &mut err);
            for (j, &dev) in online.iter().enumerate() {
                let (klo, khi) = shards[j];
                if klo == khi {
                    continue;
                }
                let ((), secs) = ctx.run_deferred(|ctx| {
                    for k in klo..khi {
                        let (lo, hi) = blocks[k];
                        let bk = hi - lo;
                        let xk = x.rows_range(lo, hi);
                        let s = &mut scratch[k];
                        // Positive phase: p(h | v0).
                        {
                            let mut h0 = s.h0_prob.rows_range_mut(0, bk);
                            ctx.gemm(1.0, xk, false, rbm.w.view(), true, 0.0, &mut h0);
                            ctx.bias_sigmoid_rows(&rbm.c_hid, &mut h0);
                        }
                        // Gibbs chain, k sweeps; every hidden sampling op
                        // addresses the global `(row, unit)` counter space.
                        let elem_base = (lo * cfg.n_hidden) as u64;
                        for (step, &stream) in streams.iter().enumerate() {
                            {
                                let probs = if step == 0 { &s.h0_prob } else { &s.h1_prob };
                                let probs = probs.rows_range(0, bk);
                                let mut sample = s.h0_sample.rows_range_mut(0, bk);
                                ctx.bernoulli_at(
                                    stream,
                                    elem_base,
                                    probs.as_slice(),
                                    sample.as_mut_slice(),
                                );
                            }
                            {
                                let mut v1 = s.v1_prob.rows_range_mut(0, bk);
                                ctx.gemm(
                                    1.0,
                                    s.h0_sample.rows_range(0, bk),
                                    false,
                                    rbm.w.view(),
                                    false,
                                    0.0,
                                    &mut v1,
                                );
                                ctx.bias_sigmoid_rows(&rbm.b_vis, &mut v1);
                            }
                            if step == 0 {
                                err[k] = ctx.frob_dist_sq(s.v1_prob.rows_range(0, bk), xk);
                            }
                            {
                                let mut h1 = s.h1_prob.rows_range_mut(0, bk);
                                ctx.gemm(
                                    1.0,
                                    s.v1_prob.rows_range(0, bk),
                                    false,
                                    rbm.w.view(),
                                    true,
                                    0.0,
                                    &mut h1,
                                );
                                ctx.bias_sigmoid_rows(&rbm.c_hid, &mut h1);
                            }
                        }
                        // Per-block CD statistics, `alpha = 1` sums.
                        ctx.gemm(
                            1.0,
                            s.h0_prob.rows_range(0, bk),
                            true,
                            xk,
                            false,
                            0.0,
                            &mut s.pos_stats.view_mut(),
                        );
                        ctx.gemm(
                            1.0,
                            s.h1_prob.rows_range(0, bk),
                            true,
                            s.v1_prob.rows_range(0, bk),
                            false,
                            0.0,
                            &mut s.neg_stats.view_mut(),
                        );
                        ctx.colsum(xk, &mut s.vis_pos);
                        ctx.colsum(s.v1_prob.rows_range(0, bk), &mut s.vis_neg);
                        ctx.colsum(s.h0_prob.rows_range(0, bk), &mut s.hid_pos);
                        ctx.colsum(s.h1_prob.rows_range(0, bk), &mut s.hid_neg);
                    }
                });
                busy[dev] += secs;
            }
        }

        // Sync: canonical-order merge of the six statistic buffers, one
        // global scale, CD updates on the replicated master copy.
        let inv_b = 1.0 / b as f32;
        let nb = blocks.len();
        macro_rules! merge {
            ($field:ident, $acc:ident) => {{
                let parts: Vec<&[f32]> = self.scratch[..nb]
                    .iter()
                    .map(|s| s.$field.as_slice())
                    .collect();
                ctx.block_merge(&parts, &mut self.$acc);
                ctx.scale(inv_b, &mut self.$acc);
            }};
        }
        merge!(pos_stats, pos_acc);
        merge!(neg_stats, neg_acc);
        merge!(vis_pos, vis_pos_acc);
        merge!(vis_neg, vis_neg_acc);
        merge!(hid_pos, hid_pos_acc);
        merge!(hid_neg, hid_neg_acc);
        ctx.cd_update(lr, &self.pos_acc, &self.neg_acc, self.rbm.w.as_mut_slice());
        ctx.cd_update(
            lr,
            &self.vis_pos_acc,
            &self.vis_neg_acc,
            &mut self.rbm.b_vis,
        );
        ctx.cd_update(
            lr,
            &self.hid_pos_acc,
            &self.hid_neg_acc,
            &mut self.rbm.c_hid,
        );

        let max_busy = busy.iter().cloned().fold(0.0, f64::max);
        // Positive + negative statistics travel the link.
        let payload = cfg.param_bytes() * 2;
        let sync = self.devset.allreduce_time(payload);
        charge_step(&mut self.devset, ctx, max_busy, sync, payload);

        let state = ctx.rng_state();
        for &dev in &online {
            self.dev_rng[dev] = state;
        }

        err.iter().sum::<f64>() / b as f64
    }

    fn resident_bytes(&self, max_batch: usize) -> u64 {
        let cfg = self.rbm.config();
        let f = std::mem::size_of::<f32>() as u64;
        let shard = max_batch.div_ceil(self.devset.online_count().max(1));
        let temps = (4 * shard * cfg.n_hidden + 2 * shard * cfg.n_visible) as u64 * f;
        cfg.param_bytes() * 3 + temps
    }

    fn save_state(&self, w: &mut dyn Write) -> io::Result<()> {
        write_multidev_prefix(w, &self.devset, self.cfg.canonical_blocks, &self.dev_rng)?;
        let mut w = w;
        save_rbm(&self.rbm, &mut w)
    }
}

impl Recoverable for DataParallelRbm {
    fn restore_state(&mut self, from: CheckpointModel) -> io::Result<()> {
        let CheckpointModel::MultiDev(state) = from else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot is not a multi-device record",
            ));
        };
        let MultiDevModelState::Rbm(rbm) = state.inner else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "multi-device snapshot holds an autoencoder, model is an RBM",
            ));
        };
        self.cfg.devices = state.devices;
        self.cfg.canonical_blocks = state.canonical_blocks;
        self.devset = self.cfg.device_set();
        for (i, &off) in state.offline.iter().enumerate() {
            if off {
                self.devset.mark_offline(i);
            }
        }
        self.dev_rng = state.dev_rng;
        let (h, v) = (rbm.config().n_hidden, rbm.config().n_visible);
        self.pos_acc = vec![0.0; h * v];
        self.neg_acc = vec![0.0; h * v];
        self.vis_pos_acc = vec![0.0; v];
        self.vis_neg_acc = vec![0.0; v];
        self.hid_pos_acc = vec![0.0; h];
        self.hid_neg_acc = vec![0.0; h];
        self.scratch.clear();
        self.rbm = rbm;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AeConfig;
    use crate::exec::OptLevel;
    use crate::rbm::RbmConfig;
    use micdnn_tensor::Mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| rng.gen_range(0.1..0.9))
    }

    #[test]
    fn block_bounds_cover_and_balance() {
        for total in [0, 1, 7, 8, 9, 100] {
            for parts in [1, 2, 3, 8] {
                let bb = block_bounds(total, parts);
                assert_eq!(bb.len(), parts);
                assert_eq!(bb[0].0, 0);
                assert_eq!(bb[parts - 1].1, total);
                let sizes: Vec<usize> = bb.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(max - min <= 1, "{total}/{parts}: sizes {sizes:?}");
                for w in bb.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
            }
        }
    }

    fn train_ae(devices: usize, batches: usize, b: usize) -> (DataParallelAe, Vec<f64>) {
        let cfg = AeConfig::new(14, 6);
        let mut model = DataParallelAe::new(
            SparseAutoencoder::new(cfg, 11),
            MultiDevConfig::new(devices),
        );
        let ctx = ExecCtx::native(OptLevel::Improved, 99);
        model.prepare(b);
        let mut errs = Vec::new();
        for i in 0..batches {
            let x = batch(b, 14, 1000 + i as u64);
            errs.push(model.train_batch(&ctx, x.view(), 0.2));
        }
        (model, errs)
    }

    #[test]
    fn ae_multi_device_is_bitwise_identical_to_single() {
        let (m1, e1) = train_ae(1, 4, 24);
        for n in [2, 3, 4] {
            let (mn, en) = train_ae(n, 4, 24);
            assert_eq!(m1.ae().w1.as_slice(), mn.ae().w1.as_slice(), "w1 N={n}");
            assert_eq!(m1.ae().w2.as_slice(), mn.ae().w2.as_slice(), "w2 N={n}");
            assert_eq!(m1.ae().b1, mn.ae().b1, "b1 N={n}");
            assert_eq!(m1.ae().b2, mn.ae().b2, "b2 N={n}");
            assert_eq!(e1, en, "recon history N={n}");
        }
    }

    #[test]
    fn ae_degenerate_more_devices_than_rows() {
        // 3-row batches over 8 devices: most devices own zero blocks.
        let (m1, e1) = train_ae(1, 3, 3);
        let (m8, e8) = train_ae(8, 3, 3);
        assert_eq!(m1.ae().w1.as_slice(), m8.ae().w1.as_slice());
        assert_eq!(e1, e8);
    }

    fn train_rbm(
        devices: usize,
        batches: usize,
        b: usize,
        cd: usize,
    ) -> (DataParallelRbm, Vec<f64>) {
        let cfg = RbmConfig::new(12, 7).with_cd_steps(cd);
        let mut model = DataParallelRbm::new(Rbm::new(cfg, 5), MultiDevConfig::new(devices));
        // Same ctx seed for every N: sampling is (seed, stream, elem)-pure.
        let ctx = ExecCtx::native(OptLevel::Improved, 42);
        model.prepare(b);
        let mut errs = Vec::new();
        for i in 0..batches {
            let x = batch(b, 12, 2000 + i as u64);
            errs.push(model.train_batch(&ctx, x.view(), 0.1));
        }
        (model, errs)
    }

    #[test]
    fn rbm_multi_device_is_bitwise_identical_to_single() {
        for cd in [1, 2] {
            let (m1, e1) = train_rbm(1, 3, 20, cd);
            for n in [2, 4] {
                let (mn, en) = train_rbm(n, 3, 20, cd);
                assert_eq!(
                    m1.rbm().w.as_slice(),
                    mn.rbm().w.as_slice(),
                    "w N={n} cd={cd}"
                );
                assert_eq!(m1.rbm().b_vis, mn.rbm().b_vis, "b_vis N={n} cd={cd}");
                assert_eq!(m1.rbm().c_hid, mn.rbm().c_hid, "c_hid N={n} cd={cd}");
                assert_eq!(e1, en, "recon history N={n} cd={cd}");
            }
        }
    }

    #[test]
    fn rbm_stream_consumption_is_device_count_invariant() {
        let ctx1 = ExecCtx::native(OptLevel::Improved, 7);
        let ctx4 = ExecCtx::native(OptLevel::Improved, 7);
        let cfg = RbmConfig::new(10, 5).with_cd_steps(3);
        let mut m1 = DataParallelRbm::new(Rbm::new(cfg, 1), MultiDevConfig::new(1));
        let mut m4 = DataParallelRbm::new(Rbm::new(cfg, 1), MultiDevConfig::new(4));
        m1.prepare(16);
        m4.prepare(16);
        let x = batch(16, 10, 3);
        m1.train_batch(&ctx1, x.view(), 0.1);
        m4.train_batch(&ctx4, x.view(), 0.1);
        assert_eq!(ctx1.rng_state(), ctx4.rng_state());
    }

    #[test]
    fn dropping_a_device_mid_run_keeps_weights_bitwise_identical() {
        let (m1, _) = train_ae(1, 4, 24);

        let cfg = AeConfig::new(14, 6);
        let mut m3 = DataParallelAe::new(SparseAutoencoder::new(cfg, 11), MultiDevConfig::new(3));
        let ctx = ExecCtx::native(OptLevel::Improved, 99);
        m3.prepare(24);
        for i in 0..4 {
            if i == 2 {
                // Lose a device halfway: blocks re-land on the survivors.
                m3.mark_device_offline(2).unwrap();
            }
            let x = batch(24, 14, 1000 + i as u64);
            m3.train_batch(&ctx, x.view(), 0.2);
        }
        assert_eq!(m3.device_set().online_count(), 2);
        assert_eq!(m1.ae().w1.as_slice(), m3.ae().w1.as_slice());
        assert_eq!(m1.ae().b2, m3.ae().b2);
    }

    #[test]
    fn degenerate_geometry_is_rejected_with_typed_errors() {
        assert_eq!(
            MultiDevConfig::validated(0, 8).unwrap_err(),
            MultiDevConfigError::NoDevices
        );
        assert_eq!(
            MultiDevConfig::validated(2, 0).unwrap_err(),
            MultiDevConfigError::NoBlocks
        );
        assert_eq!(
            MultiDevConfig::validated(4, 3).unwrap_err(),
            MultiDevConfigError::FewerBlocksThanDevices {
                blocks: 3,
                devices: 4
            }
        );
        // The error renders both numbers for the operator.
        let msg = MultiDevConfig::validated(4, 3).unwrap_err().to_string();
        assert!(msg.contains('3') && msg.contains('4'), "{msg}");
        // Sound geometry passes and matches the builder defaults.
        let cfg = MultiDevConfig::validated(2, 8).unwrap();
        assert_eq!((cfg.devices, cfg.canonical_blocks), (2, 8));
        cfg.validate().unwrap();
    }

    #[test]
    fn last_device_offline_is_recoverable_not_a_panic() {
        use crate::train::TrainError;
        let cfg = AeConfig::new(8, 4);
        let mut model = DataParallelAe::new(SparseAutoencoder::new(cfg, 1), MultiDevConfig::new(2));
        model.mark_device_offline(0).unwrap();
        let err = model.mark_device_offline(1).unwrap_err();
        assert!(
            matches!(err, TrainError::Unrecoverable { attempts: 0, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("last surviving device"));
        // The set is untouched: device 1 keeps training.
        assert_eq!(model.device_set().online_count(), 1);
        assert!(model.device_set().is_online(1));
        // Re-marking an already-offline device is a no-op, not an error.
        model.mark_device_offline(0).unwrap();

        let mut rbm =
            DataParallelRbm::new(Rbm::new(RbmConfig::new(8, 4), 1), MultiDevConfig::new(1));
        assert!(rbm.mark_device_offline(0).is_err());
        assert_eq!(rbm.device_set().online_count(), 1);
    }

    #[test]
    fn simulated_run_records_compute_and_sync_time() {
        use micdnn_sim::Platform;
        let cfg = AeConfig::new(32, 16);
        let mut model = DataParallelAe::new(SparseAutoencoder::new(cfg, 2), MultiDevConfig::new(4));
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 1);
        model.prepare(64);
        let x = batch(64, 32, 9);
        let before = ctx.sim_time();
        model.train_batch(&ctx, x.view(), 0.1);
        assert!(ctx.sim_time() > before, "simulated time must advance");
        let ds = model.device_set();
        assert!(ds.compute_secs() > 0.0);
        assert!(ds.sync_secs() > 0.0, "N=4 must pay an allreduce");
        assert!(ds.sync_fraction() > 0.0 && ds.sync_fraction() < 1.0);
    }

    #[test]
    fn single_device_pays_no_sync_time() {
        use micdnn_sim::Platform;
        let cfg = AeConfig::new(16, 8);
        let mut model = DataParallelAe::new(SparseAutoencoder::new(cfg, 2), MultiDevConfig::new(1));
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 1);
        model.prepare(32);
        let x = batch(32, 16, 9);
        model.train_batch(&ctx, x.view(), 0.1);
        assert_eq!(model.device_set().sync_secs(), 0.0);
    }

    #[test]
    fn checkpoint_round_trips_geometry_cursors_and_weights() {
        use crate::checkpoint::{load_checkpoint, save_checkpoint, TrainProgress};

        let (mut model, _) = train_ae(3, 2, 24);
        model.mark_device_offline(1).unwrap();
        let want_rng = model.dev_rng().to_vec();

        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model, 99, 7, &TrainProgress::default()).unwrap();
        let ckpt = load_checkpoint(&mut buf.as_slice()).unwrap();

        let cfg = AeConfig::new(14, 6);
        let mut fresh = DataParallelAe::new(SparseAutoencoder::new(cfg, 0), MultiDevConfig::new(3));
        fresh.restore_state(ckpt.model).unwrap();
        assert_eq!(fresh.ae().w1.as_slice(), model.ae().w1.as_slice());
        assert_eq!(fresh.ae().b1, model.ae().b1);
        assert_eq!(fresh.dev_rng(), want_rng.as_slice());
        assert_eq!(fresh.device_set().len(), 3);
        assert!(!fresh.device_set().is_online(1), "offline flag persists");
        assert_eq!(fresh.config().canonical_blocks, 8);
    }

    #[test]
    fn restore_rejects_model_kind_mismatch() {
        use crate::checkpoint::{load_checkpoint, save_checkpoint, TrainProgress};

        let (rbm_model, _) = train_rbm(2, 1, 8, 1);
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &rbm_model, 1, 1, &TrainProgress::default()).unwrap();
        let ckpt = load_checkpoint(&mut buf.as_slice()).unwrap();

        let cfg = AeConfig::new(14, 6);
        let mut ae_model =
            DataParallelAe::new(SparseAutoencoder::new(cfg, 0), MultiDevConfig::new(2));
        let err = ae_model.restore_state(ckpt.model).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trains_through_the_chunked_dataset_loop() {
        use crate::train::{train_dataset, TrainConfig};

        let cfg = AeConfig::new(10, 5);
        let mut model = DataParallelAe::new(SparseAutoencoder::new(cfg, 3), MultiDevConfig::new(2));
        let ctx = ExecCtx::native(OptLevel::Improved, 8);
        let data = micdnn_data::Dataset::new(batch(60, 10, 77));
        let tc = TrainConfig {
            batch_size: 20,
            chunk_rows: 30,
            ..TrainConfig::default()
        };
        let report = train_dataset(&mut model, &ctx, &data, &tc, 2).unwrap();
        // 30-row chunks split into 20 + 10 row batches: 4 per pass.
        assert_eq!(report.batches, 8);
        assert!(report.final_recon().is_finite());
    }
}
