//! Model persistence.
//!
//! Pre-training at the paper's scale takes hours even on the coprocessor
//! (Table I); a library users would adopt must be able to save the result.
//! This module defines a small, versioned, self-describing binary format
//! (little-endian, length-prefixed tensors) for the two building blocks
//! and their stacks. Round-trips are bit-exact.

use crate::autoencoder::{AeConfig, SparseAutoencoder};
use crate::rbm::{Rbm, RbmConfig};
use micdnn_tensor::Mat;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MICDNN01";

const TAG_AE: u8 = 1;
const TAG_RBM: u8 = 2;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

fn write_slice(w: &mut impl Write, s: &[f32]) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_vec(r: &mut impl Read, expect: usize) -> io::Result<Vec<f32>> {
    let len = read_u64(r)? as usize;
    if len != expect {
        return Err(bad(format!("tensor length {len}, expected {expect}")));
    }
    let mut out = vec![0.0f32; len];
    for v in out.iter_mut() {
        *v = read_f32(r)?;
    }
    Ok(out)
}

fn write_mat(w: &mut impl Write, m: &Mat) -> io::Result<()> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    write_slice(w, m.as_slice())
}

fn read_mat(r: &mut impl Read, rows: usize, cols: usize) -> io::Result<Mat> {
    let got_rows = read_u64(r)? as usize;
    let got_cols = read_u64(r)? as usize;
    if (got_rows, got_cols) != (rows, cols) {
        return Err(bad(format!(
            "matrix shape {got_rows}x{got_cols}, expected {rows}x{cols}"
        )));
    }
    let data = read_vec(r, rows * cols)?;
    Mat::from_vec(rows, cols, data).map_err(|e| bad(e.to_string()))
}

fn write_header(w: &mut impl Write, tag: u8) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[tag])
}

fn read_header(r: &mut impl Read, want_tag: u8) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a micdnn model file (bad magic)"));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    if tag[0] != want_tag {
        return Err(bad(format!(
            "model type tag {} does not match expected {want_tag}",
            tag[0]
        )));
    }
    Ok(())
}

/// Serializes a sparse autoencoder.
pub fn save_autoencoder(ae: &SparseAutoencoder, w: &mut impl Write) -> io::Result<()> {
    let cfg = ae.config();
    write_header(w, TAG_AE)?;
    write_u64(w, cfg.n_visible as u64)?;
    write_u64(w, cfg.n_hidden as u64)?;
    write_f32(w, cfg.weight_decay)?;
    write_f32(w, cfg.sparsity_target)?;
    write_f32(w, cfg.sparsity_weight)?;
    write_mat(w, &ae.w1)?;
    write_mat(w, &ae.w2)?;
    write_slice(w, &ae.b1)?;
    write_slice(w, &ae.b2)
}

/// Deserializes a sparse autoencoder.
pub fn load_autoencoder(r: &mut impl Read) -> io::Result<SparseAutoencoder> {
    read_header(r, TAG_AE)?;
    let n_visible = read_u64(r)? as usize;
    let n_hidden = read_u64(r)? as usize;
    if n_visible == 0 || n_hidden == 0 {
        return Err(bad("degenerate layer sizes"));
    }
    let cfg = AeConfig {
        n_visible,
        n_hidden,
        weight_decay: read_f32(r)?,
        sparsity_target: read_f32(r)?,
        sparsity_weight: read_f32(r)?,
    };
    let mut ae = SparseAutoencoder::new(cfg, 0);
    ae.w1 = read_mat(r, n_hidden, n_visible)?;
    ae.w2 = read_mat(r, n_visible, n_hidden)?;
    ae.b1 = read_vec(r, n_hidden)?;
    ae.b2 = read_vec(r, n_visible)?;
    Ok(ae)
}

/// Serializes an RBM.
pub fn save_rbm(rbm: &Rbm, w: &mut impl Write) -> io::Result<()> {
    let cfg = rbm.config();
    write_header(w, TAG_RBM)?;
    write_u64(w, cfg.n_visible as u64)?;
    write_u64(w, cfg.n_hidden as u64)?;
    write_u64(w, cfg.cd_steps as u64)?;
    write_mat(w, &rbm.w)?;
    write_slice(w, &rbm.b_vis)?;
    write_slice(w, &rbm.c_hid)
}

/// Deserializes an RBM.
pub fn load_rbm(r: &mut impl Read) -> io::Result<Rbm> {
    read_header(r, TAG_RBM)?;
    let n_visible = read_u64(r)? as usize;
    let n_hidden = read_u64(r)? as usize;
    let cd_steps = read_u64(r)? as usize;
    if n_visible == 0 || n_hidden == 0 || cd_steps == 0 {
        return Err(bad("degenerate RBM configuration"));
    }
    let cfg = RbmConfig::new(n_visible, n_hidden).with_cd_steps(cd_steps);
    let mut rbm = Rbm::new(cfg, 0);
    rbm.w = read_mat(r, n_hidden, n_visible)?;
    rbm.b_vis = read_vec(r, n_visible)?;
    rbm.c_hid = read_vec(r, n_hidden)?;
    Ok(rbm)
}

/// Saves a sparse autoencoder to a file.
pub fn save_autoencoder_file(ae: &SparseAutoencoder, path: impl AsRef<Path>) -> io::Result<()> {
    save_autoencoder(ae, &mut BufWriter::new(File::create(path)?))
}

/// Loads a sparse autoencoder from a file.
pub fn load_autoencoder_file(path: impl AsRef<Path>) -> io::Result<SparseAutoencoder> {
    load_autoencoder(&mut BufReader::new(File::open(path)?))
}

/// Saves an RBM to a file.
pub fn save_rbm_file(rbm: &Rbm, path: impl AsRef<Path>) -> io::Result<()> {
    save_rbm(rbm, &mut BufWriter::new(File::create(path)?))
}

/// Loads an RBM from a file.
pub fn load_rbm_file(path: impl AsRef<Path>) -> io::Result<Rbm> {
    load_rbm(&mut BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecCtx, OptLevel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_ae() -> SparseAutoencoder {
        let cfg = AeConfig::new(12, 7);
        let mut ae = SparseAutoencoder::new(cfg, 3);
        let ctx = ExecCtx::native(OptLevel::Improved, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Mat::from_fn(16, 12, |_, _| rng.gen_range(0.2..0.8));
        let mut scratch = crate::autoencoder::AeScratch::new(&cfg, 16);
        for _ in 0..5 {
            ae.train_batch(&ctx, x.view(), &mut scratch, 0.3);
        }
        ae
    }

    #[test]
    fn ae_round_trip_bit_exact() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        let back = load_autoencoder(&mut buf.as_slice()).unwrap();
        assert_eq!(ae.w1.as_slice(), back.w1.as_slice());
        assert_eq!(ae.w2.as_slice(), back.w2.as_slice());
        assert_eq!(ae.b1, back.b1);
        assert_eq!(ae.b2, back.b2);
        assert_eq!(ae.config(), back.config());
    }

    #[test]
    fn loaded_model_behaves_identically() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        let back = load_autoencoder(&mut buf.as_slice()).unwrap();
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Mat::from_fn(5, 12, |_, _| rng.gen_range(0.2..0.8));
        let a = ae.encode(&ctx, x.view());
        let b = back.encode(&ctx, x.view());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn rbm_round_trip_bit_exact() {
        let cfg = RbmConfig::new(10, 6).with_cd_steps(2);
        let rbm = Rbm::new(cfg, 7);
        let mut buf = Vec::new();
        save_rbm(&rbm, &mut buf).unwrap();
        let back = load_rbm(&mut buf.as_slice()).unwrap();
        assert_eq!(rbm.w.as_slice(), back.w.as_slice());
        assert_eq!(rbm.b_vis, back.b_vis);
        assert_eq!(rbm.c_hid, back.c_hid);
        assert_eq!(back.config().cd_steps, 2);
    }

    #[test]
    fn file_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("micdnn-model-{}.bin", std::process::id()));
        let ae = trained_ae();
        save_autoencoder_file(&ae, &path).unwrap();
        let back = load_autoencoder_file(&path).unwrap();
        assert_eq!(ae.w1.as_slice(), back.w1.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let buf = b"NOTMODEL".to_vec();
        let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic") || err.kind() == io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn wrong_model_type_rejected() {
        let cfg = RbmConfig::new(4, 3);
        let rbm = Rbm::new(cfg, 1);
        let mut buf = Vec::new();
        save_rbm(&rbm, &mut buf).unwrap();
        let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("type tag"));
    }

    #[test]
    fn truncated_file_rejected() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_autoencoder(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_shape_rejected() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        // Corrupt the first matrix's row count (after magic+tag+cfg).
        let off = 8 + 1 + 8 + 8 + 4 + 4 + 4;
        buf[off] = buf[off].wrapping_add(1);
        assert!(load_autoencoder(&mut buf.as_slice()).is_err());
    }
}
