//! Model persistence.
//!
//! Pre-training at the paper's scale takes hours even on the coprocessor
//! (Table I); a library users would adopt must be able to save the result.
//! This module defines a small, versioned, self-describing binary format
//! (little-endian, length-prefixed tensors) for the two building blocks
//! and their stacks. Round-trips are bit-exact.

use crate::autoencoder::{AeConfig, SparseAutoencoder};
use crate::rbm::{Rbm, RbmConfig};
use micdnn_tensor::Mat;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

pub(crate) const MAGIC: &[u8; 8] = b"MICDNN01";

pub(crate) const TAG_AE: u8 = 1;
pub(crate) const TAG_RBM: u8 = 2;
pub(crate) const TAG_CKPT: u8 = 3;
pub(crate) const TAG_MDP: u8 = 4;
pub(crate) const TAG_CNN: u8 = 5;
pub(crate) const TAG_SUP: u8 = 6;
pub(crate) const TAG_FT: u8 = 7;

/// Upper bound on any single header-derived dimension. Well above the
/// paper's largest layer (16384) but small enough that a corrupt header
/// cannot drive a pathological allocation on its own.
pub(crate) const MAX_DIM: usize = 1 << 24;

/// Upper bound on total elements in one tensor (1 GiB of f32). Dimensions
/// are validated against this *before* any buffer is allocated.
pub(crate) const MAX_ELEMS: usize = 1 << 28;

/// Floats moved per bulk I/O call; tensors stream through a byte buffer of
/// this granularity instead of one syscall-visible write per `f32`.
const IO_CHUNK_FLOATS: usize = 16 * 1024;

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A tensor on disk whose dimensions disagree with what the enclosing
/// record's header promised. Carried as the payload of an
/// [`io::ErrorKind::InvalidData`] error so layered loaders (the checkpoint
/// front door in particular) can recover the structured facts instead of
/// string-matching a message. Vectors are reported as `(len, 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Which named tensor disagreed (`"w1"`, `"b_vis"`, ...).
    pub layer: String,
    /// `(rows, cols)` the header-derived model geometry requires.
    pub expected: (usize, usize),
    /// `(rows, cols)` actually found on disk.
    pub found: (usize, usize),
}

impl std::fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "layer `{}`: shape {}x{} on disk, model expects {}x{}",
            self.layer, self.found.0, self.found.1, self.expected.0, self.expected.1
        )
    }
}

impl std::error::Error for ShapeMismatch {}

impl ShapeMismatch {
    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }
}

/// Validates a header-derived dimension before it is used to size anything.
pub(crate) fn checked_dim(v: u64, what: &str) -> io::Result<usize> {
    if v == 0 || v > MAX_DIM as u64 {
        return Err(bad(format!("{what} {v} out of range (1..={MAX_DIM})")));
    }
    Ok(v as usize)
}

/// Validates a tensor element count derived from already-checked dims.
pub(crate) fn checked_elems(rows: usize, cols: usize) -> io::Result<usize> {
    match rows.checked_mul(cols) {
        Some(n) if n <= MAX_ELEMS => Ok(n),
        _ => Err(bad(format!(
            "tensor {rows}x{cols} exceeds the {MAX_ELEMS}-element cap"
        ))),
    }
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

pub(crate) fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

pub(crate) fn write_slice(w: &mut impl Write, s: &[f32]) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    // Bulk little-endian: pack a chunk of floats into one byte buffer and
    // issue a single write_all per chunk. The wire bytes are identical to
    // the per-element encoding (pinned by the golden-file tests).
    let mut buf = Vec::with_capacity(4 * IO_CHUNK_FLOATS.min(s.len().max(1)));
    for chunk in s.chunks(IO_CHUNK_FLOATS) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

pub(crate) fn read_vec(r: &mut impl Read, expect: usize) -> io::Result<Vec<f32>> {
    // Validate the on-disk length against the caller's expectation *before*
    // allocating: a corrupt length field must never size a buffer.
    let len = read_u64(r)?;
    if len != expect as u64 {
        return Err(bad(format!("tensor length {len}, expected {expect}")));
    }
    let mut out = Vec::with_capacity(expect);
    let mut buf = vec![0u8; 4 * IO_CHUNK_FLOATS.min(expect.max(1))];
    let mut remaining = expect;
    while remaining > 0 {
        let n = remaining.min(IO_CHUNK_FLOATS);
        let bytes = &mut buf[..4 * n];
        r.read_exact(bytes)?;
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        remaining -= n;
    }
    Ok(out)
}

pub(crate) fn write_mat(w: &mut impl Write, m: &Mat) -> io::Result<()> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    write_slice(w, m.as_slice())
}

pub(crate) fn read_mat(r: &mut impl Read, rows: usize, cols: usize) -> io::Result<Mat> {
    let got_rows = read_u64(r)? as usize;
    let got_cols = read_u64(r)? as usize;
    if (got_rows, got_cols) != (rows, cols) {
        return Err(bad(format!(
            "matrix shape {got_rows}x{got_cols}, expected {rows}x{cols}"
        )));
    }
    let data = read_vec(r, checked_elems(rows, cols)?)?;
    Mat::from_vec(rows, cols, data).map_err(|e| bad(e.to_string()))
}

/// [`read_mat`], but a dimension disagreement is reported as a structured
/// [`ShapeMismatch`] payload naming `layer` instead of a bare message.
pub(crate) fn read_mat_named(
    r: &mut impl Read,
    layer: &str,
    rows: usize,
    cols: usize,
) -> io::Result<Mat> {
    let got_rows = read_u64(r)? as usize;
    let got_cols = read_u64(r)? as usize;
    if (got_rows, got_cols) != (rows, cols) {
        return Err(ShapeMismatch {
            layer: layer.to_string(),
            expected: (rows, cols),
            found: (got_rows, got_cols),
        }
        .into_io());
    }
    let data = read_vec(r, checked_elems(rows, cols)?)?;
    Mat::from_vec(rows, cols, data).map_err(|e| bad(e.to_string()))
}

/// [`read_vec`], but a length disagreement is reported as a structured
/// [`ShapeMismatch`] payload naming `layer` (shapes rendered `(len, 1)`).
pub(crate) fn read_vec_named(
    r: &mut impl Read,
    layer: &str,
    expect: usize,
) -> io::Result<Vec<f32>> {
    let len = read_u64(r)?;
    if len != expect as u64 {
        return Err(ShapeMismatch {
            layer: layer.to_string(),
            expected: (expect, 1),
            found: (len as usize, 1),
        }
        .into_io());
    }
    let mut out = Vec::with_capacity(expect);
    let mut buf = vec![0u8; 4 * IO_CHUNK_FLOATS.min(expect.max(1))];
    let mut remaining = expect;
    while remaining > 0 {
        let n = remaining.min(IO_CHUNK_FLOATS);
        let bytes = &mut buf[..4 * n];
        r.read_exact(bytes)?;
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        remaining -= n;
    }
    Ok(out)
}

pub(crate) fn write_header(w: &mut impl Write, tag: u8) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[tag])
}

/// Reads the container magic and returns the type tag, for callers that
/// dispatch on it (the checkpoint loader embeds either model type).
pub(crate) fn read_any_header(r: &mut impl Read) -> io::Result<u8> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a micdnn model file (bad magic)"));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(tag[0])
}

pub(crate) fn read_header(r: &mut impl Read, want_tag: u8) -> io::Result<()> {
    let tag = read_any_header(r)?;
    if tag != want_tag {
        return Err(bad(format!(
            "model type tag {tag} does not match expected {want_tag}"
        )));
    }
    Ok(())
}

/// Writes a file atomically: the payload goes to `<path>.tmp`, is flushed
/// and fsynced, and only then renamed over `path`. A crash, full disk, or
/// failing writer mid-save leaves any previous file at `path` untouched.
pub fn atomic_write(
    path: impl AsRef<Path>,
    f: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let written = (|| {
        let mut w = BufWriter::new(File::create(&tmp)?);
        f(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()
    })();
    match written.and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Serializes a sparse autoencoder.
pub fn save_autoencoder(ae: &SparseAutoencoder, w: &mut impl Write) -> io::Result<()> {
    let cfg = ae.config();
    write_header(w, TAG_AE)?;
    write_u64(w, cfg.n_visible as u64)?;
    write_u64(w, cfg.n_hidden as u64)?;
    write_f32(w, cfg.weight_decay)?;
    write_f32(w, cfg.sparsity_target)?;
    write_f32(w, cfg.sparsity_weight)?;
    write_mat(w, &ae.w1)?;
    write_mat(w, &ae.w2)?;
    write_slice(w, &ae.b1)?;
    write_slice(w, &ae.b2)
}

/// Deserializes a sparse autoencoder.
pub fn load_autoencoder(r: &mut impl Read) -> io::Result<SparseAutoencoder> {
    read_header(r, TAG_AE)?;
    read_autoencoder_body(r)
}

/// Reads an autoencoder record after the container header has already been
/// consumed (the checkpoint loader dispatches on the embedded tag itself).
pub(crate) fn read_autoencoder_body(r: &mut impl Read) -> io::Result<SparseAutoencoder> {
    let n_visible = checked_dim(read_u64(r)?, "n_visible")?;
    let n_hidden = checked_dim(read_u64(r)?, "n_hidden")?;
    checked_elems(n_hidden, n_visible)?;
    let cfg = AeConfig {
        n_visible,
        n_hidden,
        weight_decay: read_f32(r)?,
        sparsity_target: read_f32(r)?,
        sparsity_weight: read_f32(r)?,
    };
    let mut ae = SparseAutoencoder::new(cfg, 0);
    ae.w1 = read_mat_named(r, "w1", n_hidden, n_visible)?;
    ae.w2 = read_mat_named(r, "w2", n_visible, n_hidden)?;
    ae.b1 = read_vec_named(r, "b1", n_hidden)?;
    ae.b2 = read_vec_named(r, "b2", n_visible)?;
    Ok(ae)
}

/// Serializes an RBM.
pub fn save_rbm(rbm: &Rbm, w: &mut impl Write) -> io::Result<()> {
    let cfg = rbm.config();
    write_header(w, TAG_RBM)?;
    write_u64(w, cfg.n_visible as u64)?;
    write_u64(w, cfg.n_hidden as u64)?;
    write_u64(w, cfg.cd_steps as u64)?;
    write_mat(w, &rbm.w)?;
    write_slice(w, &rbm.b_vis)?;
    write_slice(w, &rbm.c_hid)
}

/// Deserializes an RBM.
pub fn load_rbm(r: &mut impl Read) -> io::Result<Rbm> {
    read_header(r, TAG_RBM)?;
    read_rbm_body(r)
}

/// Reads an RBM record after the container header has been consumed.
pub(crate) fn read_rbm_body(r: &mut impl Read) -> io::Result<Rbm> {
    let n_visible = checked_dim(read_u64(r)?, "n_visible")?;
    let n_hidden = checked_dim(read_u64(r)?, "n_hidden")?;
    let cd_steps = read_u64(r)?;
    if cd_steps == 0 || cd_steps > 1 << 16 {
        return Err(bad(format!("cd_steps {cd_steps} out of range")));
    }
    checked_elems(n_hidden, n_visible)?;
    let cfg = RbmConfig::new(n_visible, n_hidden).with_cd_steps(cd_steps as usize);
    let mut rbm = Rbm::new(cfg, 0);
    rbm.w = read_mat_named(r, "w", n_hidden, n_visible)?;
    rbm.b_vis = read_vec_named(r, "b_vis", n_visible)?;
    rbm.c_hid = read_vec_named(r, "c_hid", n_hidden)?;
    Ok(rbm)
}

/// Saves a sparse autoencoder to a file (atomic tmp+rename).
pub fn save_autoencoder_file(ae: &SparseAutoencoder, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write(path, |mut w| save_autoencoder(ae, &mut w))
}

/// Loads a sparse autoencoder from a file.
pub fn load_autoencoder_file(path: impl AsRef<Path>) -> io::Result<SparseAutoencoder> {
    load_autoencoder(&mut BufReader::new(File::open(path)?))
}

/// Saves an RBM to a file (atomic tmp+rename).
pub fn save_rbm_file(rbm: &Rbm, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write(path, |mut w| save_rbm(rbm, &mut w))
}

/// Loads an RBM from a file.
pub fn load_rbm_file(path: impl AsRef<Path>) -> io::Result<Rbm> {
    load_rbm(&mut BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecCtx, OptLevel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_ae() -> SparseAutoencoder {
        let cfg = AeConfig::new(12, 7);
        let mut ae = SparseAutoencoder::new(cfg, 3);
        let ctx = ExecCtx::native(OptLevel::Improved, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Mat::from_fn(16, 12, |_, _| rng.gen_range(0.2..0.8));
        let mut scratch = crate::autoencoder::AeScratch::new(&cfg, 16);
        for _ in 0..5 {
            ae.train_batch(&ctx, x.view(), &mut scratch, 0.3);
        }
        ae
    }

    #[test]
    fn ae_round_trip_bit_exact() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        let back = load_autoencoder(&mut buf.as_slice()).unwrap();
        assert_eq!(ae.w1.as_slice(), back.w1.as_slice());
        assert_eq!(ae.w2.as_slice(), back.w2.as_slice());
        assert_eq!(ae.b1, back.b1);
        assert_eq!(ae.b2, back.b2);
        assert_eq!(ae.config(), back.config());
    }

    #[test]
    fn loaded_model_behaves_identically() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        let back = load_autoencoder(&mut buf.as_slice()).unwrap();
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Mat::from_fn(5, 12, |_, _| rng.gen_range(0.2..0.8));
        let a = ae.encode(&ctx, x.view());
        let b = back.encode(&ctx, x.view());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn rbm_round_trip_bit_exact() {
        let cfg = RbmConfig::new(10, 6).with_cd_steps(2);
        let rbm = Rbm::new(cfg, 7);
        let mut buf = Vec::new();
        save_rbm(&rbm, &mut buf).unwrap();
        let back = load_rbm(&mut buf.as_slice()).unwrap();
        assert_eq!(rbm.w.as_slice(), back.w.as_slice());
        assert_eq!(rbm.b_vis, back.b_vis);
        assert_eq!(rbm.c_hid, back.c_hid);
        assert_eq!(back.config().cd_steps, 2);
    }

    #[test]
    fn file_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("micdnn-model-{}.bin", std::process::id()));
        let ae = trained_ae();
        save_autoencoder_file(&ae, &path).unwrap();
        let back = load_autoencoder_file(&path).unwrap();
        assert_eq!(ae.w1.as_slice(), back.w1.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let buf = b"NOTMODEL".to_vec();
        let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic") || err.kind() == io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn wrong_model_type_rejected() {
        let cfg = RbmConfig::new(4, 3);
        let rbm = Rbm::new(cfg, 1);
        let mut buf = Vec::new();
        save_rbm(&rbm, &mut buf).unwrap();
        let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("type tag"));
    }

    #[test]
    fn truncated_file_rejected() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_autoencoder(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_shape_rejected() {
        let ae = trained_ae();
        let mut buf = Vec::new();
        save_autoencoder(&ae, &mut buf).unwrap();
        // Corrupt the first matrix's row count (after magic+tag+cfg).
        let off = 8 + 1 + 8 + 8 + 4 + 4 + 4;
        buf[off] = buf[off].wrapping_add(1);
        assert!(load_autoencoder(&mut buf.as_slice()).is_err());
    }
}
