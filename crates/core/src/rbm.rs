//! Restricted Boltzmann Machine with Contrastive Divergence (paper §II.B.2).
//!
//! Binary-binary RBM over visible units `v` and hidden units `h` with the
//! energy of paper eq. (7):
//!
//! ```text
//! E(v, h) = -b'v - c'h - h'Wv
//! ```
//!
//! Trained with CD-k (eq. 13): clamp the batch on the visible units, sample
//! the hiddens, reconstruct, and update with the difference of the data and
//! reconstruction statistics. Hinton's practical-guide conventions (the
//! paper's ref [15]) are followed: hidden states are *sampled* on the data
//! phase, while probabilities are used for the reconstruction phase and for
//! all statistics.

use crate::exec::ExecCtx;
use micdnn_tensor::{Initializer, Mat, MatView, NormalInit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of an RBM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbmConfig {
    /// Visible units.
    pub n_visible: usize,
    /// Hidden units.
    pub n_hidden: usize,
    /// Gibbs steps per update (CD-k); the paper uses k = 1.
    pub cd_steps: usize,
}

impl RbmConfig {
    /// CD-1 configuration for the given sizes.
    pub fn new(n_visible: usize, n_hidden: usize) -> Self {
        RbmConfig {
            n_visible,
            n_hidden,
            cd_steps: 1,
        }
    }

    /// Uses `k` Gibbs steps per update.
    pub fn with_cd_steps(mut self, k: usize) -> Self {
        assert!(k >= 1, "CD needs at least one step");
        self.cd_steps = k;
        self
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.n_visible * self.n_hidden + self.n_visible + self.n_hidden
    }

    /// Bytes of device memory the parameters occupy (f32).
    pub fn param_bytes(&self) -> u64 {
        (self.param_count() * std::mem::size_of::<f32>()) as u64
    }
}

/// Reusable per-batch buffers for CD training.
///
/// These are the temporary variables of the paper's Fig. 6 dependency
/// graph: `H1` (data-phase hiddens), `V2` (reconstruction), `H2`
/// (reconstruction-phase hiddens) plus the positive/negative statistics.
#[derive(Debug)]
pub struct RbmScratch {
    max_batch: usize,
    /// Data-phase hidden probabilities, `b x h`.
    pub h0_prob: Mat,
    /// Data-phase hidden samples, `b x h`.
    pub h0_sample: Mat,
    /// Reconstruction probabilities, `b x v`.
    pub v1_prob: Mat,
    /// Reconstruction-phase hidden probabilities, `b x h`.
    pub h1_prob: Mat,
    /// Positive statistics `H0'V0`, `h x v`.
    pub pos_stats: Mat,
    /// Negative statistics `H1'V1`, `h x v`.
    pub neg_stats: Mat,
    /// Positive visible bias statistics (column means of the data).
    pub vis_pos: Vec<f32>,
    /// Negative visible bias statistics (column means of the reconstruction).
    pub vis_neg: Vec<f32>,
    /// Positive hidden bias statistics.
    pub hid_pos: Vec<f32>,
    /// Negative hidden bias statistics.
    pub hid_neg: Vec<f32>,
    /// Persistent fantasy particles for PCD (lazily initialized from the
    /// first batch).
    pcd_chain: Option<Mat>,
}

impl RbmScratch {
    /// Buffers for batches of up to `max_batch` examples.
    pub fn new(cfg: &RbmConfig, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        RbmScratch {
            max_batch,
            h0_prob: Mat::zeros(max_batch, cfg.n_hidden),
            h0_sample: Mat::zeros(max_batch, cfg.n_hidden),
            v1_prob: Mat::zeros(max_batch, cfg.n_visible),
            h1_prob: Mat::zeros(max_batch, cfg.n_hidden),
            pos_stats: Mat::zeros(cfg.n_hidden, cfg.n_visible),
            neg_stats: Mat::zeros(cfg.n_hidden, cfg.n_visible),
            vis_pos: vec![0.0; cfg.n_visible],
            vis_neg: vec![0.0; cfg.n_visible],
            hid_pos: vec![0.0; cfg.n_hidden],
            hid_neg: vec![0.0; cfg.n_hidden],
            pcd_chain: None,
        }
    }

    /// Maximum batch these buffers support.
    pub fn capacity(&self) -> usize {
        self.max_batch
    }
}

/// A binary-binary Restricted Boltzmann Machine.
#[derive(Debug, Clone)]
pub struct Rbm {
    cfg: RbmConfig,
    /// Weights, `n_hidden x n_visible` (paper's W in eqs. 8–9).
    pub w: Mat,
    /// Visible biases `b`, length `n_visible`.
    pub b_vis: Vec<f32>,
    /// Hidden biases `c`, length `n_hidden`.
    pub c_hid: Vec<f32>,
}

impl Rbm {
    /// Fresh RBM with `N(0, 0.01)` weights and zero biases (Hinton's
    /// recipe).
    pub fn new(cfg: RbmConfig, seed: u64) -> Self {
        assert!(
            cfg.n_visible > 0 && cfg.n_hidden > 0,
            "layer sizes must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        Rbm {
            w: NormalInit { sigma: 0.01 }.init(cfg.n_hidden, cfg.n_visible, &mut rng),
            b_vis: vec![0.0; cfg.n_visible],
            c_hid: vec![0.0; cfg.n_hidden],
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RbmConfig {
        &self.cfg
    }

    /// `p(h = 1 | v) = sigmoid(c + v W^T)` for a batch of visibles
    /// (paper eq. 9), written into `out` (`b x h`).
    pub fn prop_up(&self, ctx: &ExecCtx, v: MatView<'_>, out: &mut Mat) {
        let b = v.rows();
        assert_eq!(
            v.cols(),
            self.cfg.n_visible,
            "visible dimensionality mismatch"
        );
        let mut o = out.rows_range_mut(0, b);
        ctx.gemm(1.0, v, false, self.w.view(), true, 0.0, &mut o);
        ctx.bias_sigmoid_rows(&self.c_hid, &mut o);
    }

    /// `p(v = 1 | h) = sigmoid(b + h W)` for a batch of hiddens
    /// (paper eq. 8), written into `out` (`b x v`).
    pub fn prop_down(&self, ctx: &ExecCtx, h: MatView<'_>, out: &mut Mat) {
        let b = h.rows();
        assert_eq!(
            h.cols(),
            self.cfg.n_hidden,
            "hidden dimensionality mismatch"
        );
        let mut o = out.rows_range_mut(0, b);
        ctx.gemm(1.0, h, false, self.w.view(), false, 0.0, &mut o);
        ctx.bias_sigmoid_rows(&self.b_vis, &mut o);
    }

    /// One CD-k update on a batch `v0` (`b x n_visible`, values in [0,1]).
    ///
    /// The step is the Fig. 6 dependency graph run in declaration order —
    /// the exact serial op sequence (positive phase, Gibbs chain,
    /// statistics, updates) of the classic hand-rolled loop, sharing one
    /// builder with [`crate::cd_step_graph`]. Debug builds (and release
    /// contexts with [`ExecCtx::with_verify`]) statically verify the graph
    /// first ([`crate::verify`]): races, register aliasing, use-before-init
    /// and sampling-order hazards all refuse to run.
    ///
    /// Returns the mean per-example squared reconstruction error
    /// `1/b ‖v1 - v0‖²` measured on the first reconstruction.
    pub fn cd_step(
        &mut self,
        ctx: &ExecCtx,
        v0: MatView<'_>,
        scratch: &mut RbmScratch,
        learning_rate: f32,
    ) -> f64 {
        let b = v0.rows();
        assert!(b > 0, "empty batch");
        assert!(b <= scratch.max_batch, "batch exceeds scratch capacity");
        let cfg = self.cfg;
        let mut g = crate::cd_graph::build_cd_graph(cfg.n_visible, cfg.n_hidden, b, cfg.cd_steps);
        let mut state = crate::cd_graph::CdState {
            rbm: self,
            scratch,
            v0,
            lr: learning_rate,
            recon_err: 0.0,
        };
        g.run_serial(ctx, &mut state);
        state.recon_err
    }

    /// One Persistent Contrastive Divergence update (Tieleman's PCD; also
    /// recommended in Hinton's practical guide, the paper's ref [15]).
    ///
    /// Unlike CD-1, the negative phase continues a *persistent* Gibbs
    /// chain of fantasy particles across updates instead of restarting
    /// from the data, which gives better likelihood gradients late in
    /// training. The chain lives in the scratch and is (re)initialized
    /// from the first batch it sees.
    pub fn pcd_step(
        &mut self,
        ctx: &ExecCtx,
        v0: MatView<'_>,
        scratch: &mut RbmScratch,
        learning_rate: f32,
    ) -> f64 {
        let b = v0.rows();
        assert!(b > 0, "empty batch");
        assert!(b <= scratch.max_batch, "batch exceeds scratch capacity");

        // Positive phase on the data (probabilities for the statistics).
        self.prop_up(ctx, v0, &mut scratch.h0_prob);
        let recon_err = {
            // Reported metric: ordinary one-step reconstruction error.
            self.prop_down(ctx, scratch.h0_prob.rows_range(0, b), &mut scratch.v1_prob);
            ctx.frob_dist_sq(scratch.v1_prob.rows_range(0, b), v0) / b as f64
        };

        // Negative phase: advance the persistent chain by one Gibbs sweep.
        let chain_missing = match &scratch.pcd_chain {
            Some(c) => c.rows() < b || c.cols() != self.cfg.n_visible,
            None => true,
        };
        if chain_missing {
            let mut init = Mat::zeros(scratch.max_batch, self.cfg.n_visible);
            for r in 0..b {
                init.row_mut(r).copy_from_slice(v0.row(r));
            }
            scratch.pcd_chain = Some(init);
        }
        let chain = scratch.pcd_chain.as_mut().expect("just initialized");

        // h_f ~ p(h | chain); chain <- sample(p(v | h_f)).
        {
            let (h1p, hs) = (&mut scratch.h1_prob, &mut scratch.h0_sample);
            let mut o = h1p.rows_range_mut(0, b);
            ctx.gemm(
                1.0,
                chain.rows_range(0, b),
                false,
                self.w.view(),
                true,
                0.0,
                &mut o,
            );
            ctx.bias_sigmoid_rows(&self.c_hid, &mut o);
            let probs = h1p.rows_range(0, b);
            let mut sample = hs.rows_range_mut(0, b);
            ctx.bernoulli(probs.as_slice(), sample.as_mut_slice());
        }
        {
            let mut o = chain.rows_range_mut(0, b);
            ctx.gemm(
                1.0,
                scratch.h0_sample.rows_range(0, b),
                false,
                self.w.view(),
                false,
                0.0,
                &mut o,
            );
            ctx.bias_sigmoid_rows(&self.b_vis, &mut o);
        }
        {
            // Sample the visibles to keep the chain binary.
            let probs = chain.rows_range(0, b).to_mat();
            let mut sample = chain.rows_range_mut(0, b);
            ctx.bernoulli(probs.as_slice(), sample.as_mut_slice());
        }
        // Hidden probabilities of the new fantasy state for the statistics.
        {
            let (h1p, ch) = (&mut scratch.h1_prob, &*chain);
            let mut o = h1p.rows_range_mut(0, b);
            ctx.gemm(
                1.0,
                ch.rows_range(0, b),
                false,
                self.w.view(),
                true,
                0.0,
                &mut o,
            );
            ctx.bias_sigmoid_rows(&self.c_hid, &mut o);
        }

        // Statistics and updates (same shapes as CD).
        let inv_b = 1.0 / b as f32;
        ctx.gemm(
            inv_b,
            scratch.h0_prob.rows_range(0, b),
            true,
            v0,
            false,
            0.0,
            &mut scratch.pos_stats.view_mut(),
        );
        {
            let (h1p, ch, neg) = (
                &scratch.h1_prob,
                scratch.pcd_chain.as_ref().expect("chain"),
                &mut scratch.neg_stats,
            );
            ctx.gemm(
                inv_b,
                h1p.rows_range(0, b),
                true,
                ch.rows_range(0, b),
                false,
                0.0,
                &mut neg.view_mut(),
            );
        }
        ctx.colmean(v0, &mut scratch.vis_pos);
        {
            let (ch, out) = (
                scratch.pcd_chain.as_ref().expect("chain"),
                &mut scratch.vis_neg,
            );
            ctx.colmean(ch.rows_range(0, b), out);
        }
        ctx.colmean(scratch.h0_prob.rows_range(0, b), &mut scratch.hid_pos);
        {
            let (h1p, out) = (&scratch.h1_prob, &mut scratch.hid_neg);
            ctx.colmean(h1p.rows_range(0, b), out);
        }

        ctx.cd_update(
            learning_rate,
            scratch.pos_stats.as_slice(),
            scratch.neg_stats.as_slice(),
            self.w.as_mut_slice(),
        );
        ctx.cd_update(
            learning_rate,
            &scratch.vis_pos,
            &scratch.vis_neg,
            &mut self.b_vis,
        );
        ctx.cd_update(
            learning_rate,
            &scratch.hid_pos,
            &scratch.hid_neg,
            &mut self.c_hid,
        );

        recon_err
    }

    /// Mean per-example squared one-step reconstruction error without
    /// updating parameters.
    pub fn reconstruction_error(
        &self,
        ctx: &ExecCtx,
        v0: MatView<'_>,
        scratch: &mut RbmScratch,
    ) -> f64 {
        let b = v0.rows();
        self.prop_up(ctx, v0, &mut scratch.h0_prob);
        self.prop_down(ctx, scratch.h0_prob.rows_range(0, b), &mut scratch.v1_prob);
        ctx.frob_dist_sq(scratch.v1_prob.rows_range(0, b), v0) / b as f64
    }

    /// Free energy `F(v) = -b'v - Σ_j log(1 + exp(c_j + W_j · v))` summed
    /// over the batch and divided by the batch size.
    ///
    /// A well-trained RBM assigns lower free energy to data than to noise.
    pub fn free_energy(&self, ctx: &ExecCtx, v: MatView<'_>) -> f64 {
        let b = v.rows();
        assert!(b > 0, "empty batch");
        // pre-activations: x = v W^T (b x h), then add c per row.
        let mut x = Mat::zeros(b, self.cfg.n_hidden);
        {
            let mut xv = x.view_mut();
            ctx.gemm(1.0, v, false, self.w.view(), true, 0.0, &mut xv);
        }
        let mut total = 0.0f64;
        for r in 0..b {
            let mut fe = 0.0f64;
            for (&xi, &ci) in x.row(r).iter().zip(&self.c_hid) {
                let z = (xi + ci) as f64;
                // log(1 + e^z), stably.
                fe -= if z > 30.0 { z } else { z.exp().ln_1p() };
            }
            let vb: f64 = v
                .row(r)
                .iter()
                .zip(&self.b_vis)
                .map(|(&vi, &bi)| (vi * bi) as f64)
                .sum();
            total += fe - vb;
        }
        total / b as f64
    }

    /// Encodes a batch to hidden probabilities (used to stack RBMs into a
    /// Deep Belief Network).
    pub fn encode(&self, ctx: &ExecCtx, v: MatView<'_>) -> Mat {
        let mut out = Mat::zeros(v.rows(), self.cfg.n_hidden);
        self.prop_up(ctx, v, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecCtx, OptLevel};
    use rand::Rng;

    /// A simple structured binary dataset: two prototype patterns plus
    /// flip noise.
    fn patterned_batch(b: usize, v: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(b, v, |r, c| {
            let proto = if r % 2 == 0 {
                (c % 2) as f32
            } else {
                ((c + 1) % 2) as f32
            };
            if rng.gen_bool(0.05) {
                1.0 - proto
            } else {
                proto
            }
        })
    }

    #[test]
    fn prop_up_down_ranges() {
        let cfg = RbmConfig::new(12, 6);
        let rbm = Rbm::new(cfg, 1);
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let v = patterned_batch(5, 12, 2);
        let mut h = Mat::zeros(5, 6);
        rbm.prop_up(&ctx, v.view(), &mut h);
        assert!(h.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        let mut v2 = Mat::zeros(5, 12);
        rbm.prop_down(&ctx, h.view(), &mut v2);
        assert!(v2.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn cd1_training_reduces_reconstruction_error() {
        let cfg = RbmConfig::new(16, 12);
        let mut rbm = Rbm::new(cfg, 3);
        let ctx = ExecCtx::native(OptLevel::Improved, 42);
        let v = patterned_batch(64, 16, 4);
        let mut scratch = RbmScratch::new(&cfg, 64);
        let before = rbm.reconstruction_error(&ctx, v.view(), &mut scratch);
        for _ in 0..300 {
            rbm.cd_step(&ctx, v.view(), &mut scratch, 0.1);
        }
        let after = rbm.reconstruction_error(&ctx, v.view(), &mut scratch);
        assert!(
            after < 0.5 * before,
            "reconstruction did not improve: {before} -> {after}"
        );
        assert!(rbm.w.all_finite());
    }

    #[test]
    fn free_energy_separates_data_from_noise() {
        let cfg = RbmConfig::new(16, 12);
        let mut rbm = Rbm::new(cfg, 3);
        let ctx = ExecCtx::native(OptLevel::Improved, 42);
        let data = patterned_batch(64, 16, 4);
        let mut scratch = RbmScratch::new(&cfg, 64);
        for _ in 0..300 {
            rbm.cd_step(&ctx, data.view(), &mut scratch, 0.1);
        }
        let mut rng = StdRng::seed_from_u64(99);
        let noise = Mat::from_fn(64, 16, |_, _| if rng.gen_bool(0.5) { 1.0 } else { 0.0 });
        let fe_data = rbm.free_energy(&ctx, data.view());
        let fe_noise = rbm.free_energy(&ctx, noise.view());
        assert!(
            fe_data + 1.0 < fe_noise,
            "data free energy {fe_data} not below noise {fe_noise}"
        );
    }

    #[test]
    fn cd_k_runs_and_trains() {
        let cfg = RbmConfig::new(10, 8).with_cd_steps(3);
        let mut rbm = Rbm::new(cfg, 5);
        let ctx = ExecCtx::native(OptLevel::Improved, 7);
        let v = patterned_batch(32, 10, 6);
        let mut scratch = RbmScratch::new(&cfg, 32);
        let before = rbm.reconstruction_error(&ctx, v.view(), &mut scratch);
        for _ in 0..200 {
            rbm.cd_step(&ctx, v.view(), &mut scratch, 0.1);
        }
        let after = rbm.reconstruction_error(&ctx, v.view(), &mut scratch);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = RbmConfig::new(8, 6);
        let run = || {
            let mut rbm = Rbm::new(cfg, 11);
            let ctx = ExecCtx::native(OptLevel::Improved, 13);
            let v = patterned_batch(16, 8, 14);
            let mut s = RbmScratch::new(&cfg, 16);
            for _ in 0..10 {
                rbm.cd_step(&ctx, v.view(), &mut s, 0.1);
            }
            rbm.w
        };
        let a = run();
        let b = run();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn encode_shape() {
        let cfg = RbmConfig::new(8, 5);
        let rbm = Rbm::new(cfg, 1);
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let v = patterned_batch(7, 8, 2);
        let h = rbm.encode(&ctx, v.view());
        assert_eq!(h.shape(), (7, 5));
    }

    #[test]
    fn pcd_training_reduces_reconstruction_error() {
        let cfg = RbmConfig::new(16, 12);
        let mut rbm = Rbm::new(cfg, 3);
        let ctx = ExecCtx::native(OptLevel::Improved, 42);
        let v = patterned_batch(64, 16, 4);
        let mut scratch = RbmScratch::new(&cfg, 64);
        let before = rbm.reconstruction_error(&ctx, v.view(), &mut scratch);
        for _ in 0..300 {
            rbm.pcd_step(&ctx, v.view(), &mut scratch, 0.05);
        }
        let after = rbm.reconstruction_error(&ctx, v.view(), &mut scratch);
        assert!(
            after < 0.6 * before,
            "PCD did not improve reconstruction: {before} -> {after}"
        );
        assert!(rbm.w.all_finite());
    }

    #[test]
    fn pcd_chain_persists_and_moves() {
        let cfg = RbmConfig::new(10, 8);
        let mut rbm = Rbm::new(cfg, 5);
        let ctx = ExecCtx::native(OptLevel::Improved, 6);
        let v = patterned_batch(16, 10, 7);
        let mut scratch = RbmScratch::new(&cfg, 16);
        rbm.pcd_step(&ctx, v.view(), &mut scratch, 0.05);
        let first = scratch.pcd_chain.as_ref().unwrap().clone();
        rbm.pcd_step(&ctx, v.view(), &mut scratch, 0.05);
        let second = scratch.pcd_chain.as_ref().unwrap().clone();
        assert_ne!(first.as_slice(), second.as_slice(), "chain should move");
        assert!(
            second.as_slice().iter().all(|&s| s == 0.0 || s == 1.0),
            "chain stays binary"
        );
    }

    #[test]
    fn pcd_differs_from_cd() {
        let cfg = RbmConfig::new(12, 8);
        let v = patterned_batch(20, 12, 9);
        let run = |pcd: bool| {
            let mut rbm = Rbm::new(cfg, 10);
            let ctx = ExecCtx::native(OptLevel::Improved, 11);
            let mut s = RbmScratch::new(&cfg, 20);
            for _ in 0..20 {
                if pcd {
                    rbm.pcd_step(&ctx, v.view(), &mut s, 0.1);
                } else {
                    rbm.cd_step(&ctx, v.view(), &mut s, 0.1);
                }
            }
            rbm.w
        };
        let w_cd = run(false);
        let w_pcd = run(true);
        assert_ne!(w_cd.as_slice(), w_pcd.as_slice());
    }

    #[test]
    #[should_panic(expected = "CD needs at least one step")]
    fn zero_cd_steps_rejected() {
        RbmConfig::new(4, 4).with_cd_steps(0);
    }
}
