//! The sparse-autoencoder step (forward, squared-error + KL-sparsity
//! backward, parameter update) as a declared-buffer dependency graph —
//! the AE counterpart of the paper's Fig. 6 CD graph.
//!
//! ```text
//! F1  = sigmoid(x W1' + b1)            (root)
//! F2  = sigmoid(F1 W2' + b2)           (needs F1)
//! COST= ‖a3 - x‖²/2m + λ/2 ‖W‖²        (needs F2)
//! RHO = colmean(a2)                    (needs F1)    — concurrent with F2
//! KL  = sparsity term s(ρ̂)            (needs RHO)
//! D3  = (a3 - x) ⊙ σ'(a3)              (needs F2)
//! GW2 = D3' a2 / b ; GB2 = colmean(D3) (need D3)     — mutually concurrent
//! D2  = (D3 W2 + s) ⊙ σ'(a2)           (needs D3, KL)
//! GW1 = D2' x / b ; GB1 = colmean(D2)  (need D2)     — mutually concurrent
//! U*  = per-tensor parameter updates   (each needs only its gradient)
//! ```
//!
//! One builder backs both execution styles, exactly as for CD:
//! [`SparseAutoencoder::cost_and_grad`] and
//! [`SparseAutoencoder::train_batch`] run the graph with
//! [`TaskGraph::run_serial`] — declaration order is the original serial op
//! order, so weights, sampling streams, recorded op streams and profiling
//! spans are bit-for-bit what the hand-rolled loop produced — while
//! [`ae_step_graph`] runs it with [`TaskGraph::execute`] under the
//! critical-path schedule.
//!
//! Unlike CD-1, the AE step offers the planner no aliasing opportunity:
//! `delta3` stays live into `D2`, `delta2` overlaps `s_term` and `rho_hat`
//! feeds `KL` while `delta3` is in flight — every scratch pair interferes.
//! The declarations still pay their way: the planner proves the peak is
//! irreducible instead of leaving it to folklore, and the executor uses
//! the same footprints to pick concurrency waves.

use crate::autoencoder::{AeCost, AeScratch, SparseAutoencoder};
use crate::exec::ExecCtx;
use crate::graph::{BufClass, GraphRun, NodeSpec, TaskGraph};
use crate::layers::{Decl, Emit, Layer, Part, StackBuilder};
use crate::optim::Optimizer;
use micdnn_kernels::fused::kl_sparsity;
use micdnn_kernels::vecops;
use micdnn_tensor::MatView;

/// Model parameters threaded through an AE graph run: shared for
/// gradient-only runs, mutable when the graph includes update nodes.
pub(crate) enum AeParams<'a> {
    Shared(&'a SparseAutoencoder),
    Mut(&'a mut SparseAutoencoder),
}

impl AeParams<'_> {
    fn get(&self) -> &SparseAutoencoder {
        match self {
            AeParams::Shared(ae) => ae,
            AeParams::Mut(ae) => ae,
        }
    }

    fn get_mut(&mut self) -> &mut SparseAutoencoder {
        match self {
            AeParams::Mut(ae) => ae,
            AeParams::Shared(_) => {
                unreachable!("update nodes are only built over mutable parameters")
            }
        }
    }
}

/// Mutable state one AE graph run threads through its nodes.
pub struct AeState<'a> {
    pub(crate) params: AeParams<'a>,
    pub(crate) scratch: &'a mut AeScratch,
    pub(crate) x: MatView<'a>,
    pub(crate) opt: Option<&'a mut Optimizer>,
    pub(crate) lr: f32,
    pub(crate) cost: AeCost,
}

/// How (and whether) the graph updates the parameters after the backward
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeUpdate {
    /// Gradients only ([`SparseAutoencoder::cost_and_grad`]).
    None,
    /// Plain SGD with the state's learning rate.
    Sgd,
    /// Through the state's [`Optimizer`] (slots 0..4 = w1, w2, b1, b2),
    /// advancing its schedule.
    Opt,
}

// Registry slots for the AE stack: encoder, decoder, sparsity block.
const ENC: usize = 0;
const DEC: usize = 1;
const SPARS: usize = 2;

/// Encoder half: F1 forward, D2 backward (two sweeps, as the serial path
/// does), GW1/GB1 gradients, U1/U3 updates.
struct AeEncode {
    n_visible: usize,
    n_hidden: usize,
    b: usize,
    update: AeUpdate,
}

impl<'a> Layer<AeState<'a>> for AeEncode {
    fn tag(&self) -> &'static str {
        "ae-encode"
    }

    fn declare(&self, sb: &mut StackBuilder<AeState<'a>>, what: Decl) {
        let (v, h, b) = (self.n_visible, self.n_hidden, self.b);
        match what {
            // Parameters and input: analysis-only externals.
            Decl::Params => {
                sb.bind_dims(ENC, "w", "w1", &[h, v], BufClass::External);
                sb.bind_dims(ENC, "b", "b1", &[h], BufClass::External);
            }
            // Activations are pinned: `AeScratch::hidden` exposes them
            // after the run (encode-by-inspection, tests, stacking).
            Decl::Acts => {
                sb.bind_dims(ENC, "act", "a2", &[b, h], BufClass::Pinned);
            }
            Decl::Deltas => {
                sb.bind_dims(ENC, "delta", "delta2", &[b, h], BufClass::Scratch);
            }
            // Gradients are pinned: consumed after the run by optimizer
            // steps or hybrid blending (`AeScratch::gradients`).
            Decl::Grads(Part::Weights) => {
                sb.bind_dims(ENC, "gw", "gw1", &[h, v], BufClass::Pinned);
            }
            Decl::Grads(Part::Biases) => {
                sb.bind_dims(ENC, "gb", "gb1", &[h], BufClass::Pinned);
            }
        }
    }

    fn emit(&self, sb: &mut StackBuilder<AeState<'a>>, what: Emit) {
        let b = self.b;
        let inv_b = 1.0 / b as f32;
        match what {
            // F1: a2 = sigmoid(x W1^T + b1).
            Emit::Forward => {
                let (x, w1, b1, a2) = (
                    sb.global("x"),
                    sb.buf(ENC, "w"),
                    sb.buf(ENC, "b"),
                    sb.buf(ENC, "act"),
                );
                sb.node(
                    NodeSpec::new("F1")
                        .reads(&[x, w1, b1])
                        .writes(&[a2])
                        .phase("forward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let ae = s.params.get();
                        let mut a2 = s.scratch.a2.rows_range_mut(0, b);
                        ctx.gemm(1.0, s.x, false, ae.w1.view(), true, 0.0, &mut a2);
                        ctx.bias_sigmoid_rows(&ae.b1, &mut a2);
                    },
                );
            }
            // D2: delta2 = (delta3 W2 + s) ⊙ a2 ⊙ (1 - a2), in two sweeps
            // as the serial path does.
            Emit::Backward => {
                let (delta3, w2, delta2) =
                    (sb.buf(DEC, "delta"), sb.buf(DEC, "w"), sb.buf(ENC, "delta"));
                sb.node(
                    NodeSpec::new("D2a")
                        .reads(&[delta3, w2])
                        .writes(&[delta2])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let ae = s.params.get();
                        let scr = &mut *s.scratch;
                        let (d3, d2) = (&scr.delta3, &mut scr.delta2);
                        let mut d2 = d2.rows_range_mut(0, b);
                        ctx.gemm(
                            1.0,
                            d3.rows_range(0, b),
                            false,
                            ae.w2.view(),
                            false,
                            0.0,
                            &mut d2,
                        );
                    },
                );
                let (s_term, a2) = (sb.buf(SPARS, "s_term"), sb.buf(ENC, "act"));
                sb.node(
                    NodeSpec::new("D2b")
                        .reads(&[s_term, a2, delta2])
                        .writes(&[delta2])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let scr = &mut *s.scratch;
                        let (a2m, delta2m, st) = (&scr.a2, &mut scr.delta2, &scr.s_term);
                        let mut d2 = delta2m.rows_range_mut(0, b);
                        ctx.bias_deriv_rows(st, a2m.rows_range(0, b), &mut d2);
                    },
                );
            }
            // GW1 = 1/b delta2^T x ; GB1 = 1/b colsum(delta2).
            Emit::Grads(Part::Weights) => {
                let (delta2, x, gw1) = (sb.buf(ENC, "delta"), sb.global("x"), sb.buf(ENC, "gw"));
                sb.node(
                    NodeSpec::new("GW1")
                        .reads(&[delta2, x])
                        .writes(&[gw1])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let scr = &mut *s.scratch;
                        let (d2, out) = (&scr.delta2, &mut scr.gw1);
                        ctx.gemm(
                            inv_b,
                            d2.rows_range(0, b),
                            true,
                            s.x,
                            false,
                            0.0,
                            &mut out.view_mut(),
                        );
                    },
                );
            }
            Emit::Grads(Part::Biases) => {
                let (delta2, gb1) = (sb.buf(ENC, "delta"), sb.buf(ENC, "gb"));
                sb.node(
                    NodeSpec::new("GB1")
                        .reads(&[delta2])
                        .writes(&[gb1])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let scr = &mut *s.scratch;
                        let (d2, out) = (&scr.delta2, &mut scr.gb1);
                        ctx.colmean(d2.rows_range(0, b), out);
                    },
                );
            }
            Emit::Update(Part::Weights) => {
                let (gw1, w1) = (sb.buf(ENC, "gw"), sb.buf(ENC, "w"));
                match self.update {
                    AeUpdate::None => {}
                    AeUpdate::Sgd => sb.node(
                        NodeSpec::new("U1")
                            .reads(&[gw1, w1])
                            .writes(&[w1])
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            let lambda = ae.config().weight_decay;
                            ctx.sgd_step(
                                s.lr,
                                lambda,
                                s.scratch.gw1.as_slice(),
                                ae.w1.as_mut_slice(),
                            );
                        },
                    ),
                    AeUpdate::Opt => sb.node(
                        NodeSpec::new("U1")
                            .reads(&[gw1, w1])
                            .writes(&[w1])
                            .exclusive()
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            let lambda = ae.config().weight_decay;
                            let opt = s.opt.as_deref_mut().expect("optimizer-mode graph");
                            opt.step_slot(
                                ctx,
                                0,
                                lambda,
                                s.scratch.gw1.as_slice(),
                                ae.w1.as_mut_slice(),
                            );
                        },
                    ),
                }
            }
            Emit::Update(Part::Biases) => {
                let (gb1, b1) = (sb.buf(ENC, "gb"), sb.buf(ENC, "b"));
                match self.update {
                    AeUpdate::None => {}
                    AeUpdate::Sgd => sb.node(
                        NodeSpec::new("U3")
                            .reads(&[gb1, b1])
                            .writes(&[b1])
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            ctx.sgd_step(s.lr, 0.0, &s.scratch.gb1, &mut ae.b1);
                        },
                    ),
                    AeUpdate::Opt => sb.node(
                        NodeSpec::new("U3")
                            .reads(&[gb1, b1])
                            .writes(&[b1])
                            .exclusive()
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            let opt = s.opt.as_deref_mut().expect("optimizer-mode graph");
                            opt.step_slot(ctx, 2, 0.0, &s.scratch.gb1, &mut ae.b1);
                        },
                    ),
                }
            }
        }
    }
}

/// Decoder half: F2 forward, D3 backward, GW2/GB2 gradients, U2/U4
/// updates (U4 advances the optimizer schedule in `Opt` mode — it is the
/// graph's last update node).
struct AeDecode {
    n_visible: usize,
    n_hidden: usize,
    b: usize,
    update: AeUpdate,
}

impl<'a> Layer<AeState<'a>> for AeDecode {
    fn tag(&self) -> &'static str {
        "ae-decode"
    }

    fn declare(&self, sb: &mut StackBuilder<AeState<'a>>, what: Decl) {
        let (v, h, b) = (self.n_visible, self.n_hidden, self.b);
        match what {
            Decl::Params => {
                sb.bind_dims(DEC, "w", "w2", &[v, h], BufClass::External);
                sb.bind_dims(DEC, "b", "b2", &[v], BufClass::External);
            }
            Decl::Acts => {
                sb.bind_dims(DEC, "act", "a3", &[b, v], BufClass::Pinned);
            }
            // Backward temporaries: aliasing candidates (none exist for
            // this DAG — see the module docs — but the planner gets to
            // prove that).
            Decl::Deltas => {
                sb.bind_dims(DEC, "delta", "delta3", &[b, v], BufClass::Scratch);
            }
            Decl::Grads(Part::Weights) => {
                sb.bind_dims(DEC, "gw", "gw2", &[v, h], BufClass::Pinned);
            }
            Decl::Grads(Part::Biases) => {
                sb.bind_dims(DEC, "gb", "gb2", &[v], BufClass::Pinned);
            }
        }
    }

    fn emit(&self, sb: &mut StackBuilder<AeState<'a>>, what: Emit) {
        let b = self.b;
        let inv_b = 1.0 / b as f32;
        match what {
            // F2: a3 = sigmoid(a2 W2^T + b2).
            Emit::Forward => {
                let (a2, w2, b2, a3) = (
                    sb.buf(ENC, "act"),
                    sb.buf(DEC, "w"),
                    sb.buf(DEC, "b"),
                    sb.buf(DEC, "act"),
                );
                sb.node(
                    NodeSpec::new("F2")
                        .reads(&[a2, w2, b2])
                        .writes(&[a3])
                        .phase("forward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let ae = s.params.get();
                        let scr = &mut *s.scratch;
                        let a2v = scr.a2.rows_range(0, b);
                        let mut a3 = scr.a3.rows_range_mut(0, b);
                        ctx.gemm(1.0, a2v, false, ae.w2.view(), true, 0.0, &mut a3);
                        ctx.bias_sigmoid_rows(&ae.b2, &mut a3);
                    },
                );
            }
            // D3: delta3 = (a3 - x) ⊙ a3 ⊙ (1 - a3).
            Emit::Backward => {
                let (a3, x, delta3) = (sb.buf(DEC, "act"), sb.global("x"), sb.buf(DEC, "delta"));
                sb.node(
                    NodeSpec::new("D3")
                        .reads(&[a3, x])
                        .writes(&[delta3])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let scr = &mut *s.scratch;
                        let (a3s, d3) = (
                            scr.a3.rows_range(0, b),
                            &mut scr.delta3.rows_range_mut(0, b),
                        );
                        ctx.delta_output(a3s.as_slice(), s.x.as_slice(), d3.as_mut_slice());
                    },
                );
            }
            // GW2 = 1/b delta3^T a2 ; GB2 = 1/b colsum(delta3).
            Emit::Grads(Part::Weights) => {
                let (delta3, a2, gw2) =
                    (sb.buf(DEC, "delta"), sb.buf(ENC, "act"), sb.buf(DEC, "gw"));
                sb.node(
                    NodeSpec::new("GW2")
                        .reads(&[delta3, a2])
                        .writes(&[gw2])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let scr = &mut *s.scratch;
                        let (d3, a2m, out) = (&scr.delta3, &scr.a2, &mut scr.gw2);
                        ctx.gemm(
                            inv_b,
                            d3.rows_range(0, b),
                            true,
                            a2m.rows_range(0, b),
                            false,
                            0.0,
                            &mut out.view_mut(),
                        );
                    },
                );
            }
            Emit::Grads(Part::Biases) => {
                let (delta3, gb2) = (sb.buf(DEC, "delta"), sb.buf(DEC, "gb"));
                sb.node(
                    NodeSpec::new("GB2")
                        .reads(&[delta3])
                        .writes(&[gb2])
                        .phase("backward"),
                    move |ctx, s: &mut AeState<'_>| {
                        let scr = &mut *s.scratch;
                        let (d3, out) = (&scr.delta3, &mut scr.gb2);
                        ctx.colmean(d3.rows_range(0, b), out);
                    },
                );
            }
            Emit::Update(Part::Weights) => {
                let (gw2, w2) = (sb.buf(DEC, "gw"), sb.buf(DEC, "w"));
                match self.update {
                    AeUpdate::None => {}
                    AeUpdate::Sgd => sb.node(
                        NodeSpec::new("U2")
                            .reads(&[gw2, w2])
                            .writes(&[w2])
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            let lambda = ae.config().weight_decay;
                            ctx.sgd_step(
                                s.lr,
                                lambda,
                                s.scratch.gw2.as_slice(),
                                ae.w2.as_mut_slice(),
                            );
                        },
                    ),
                    AeUpdate::Opt => sb.node(
                        NodeSpec::new("U2")
                            .reads(&[gw2, w2])
                            .writes(&[w2])
                            .exclusive()
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            let lambda = ae.config().weight_decay;
                            let opt = s.opt.as_deref_mut().expect("optimizer-mode graph");
                            opt.step_slot(
                                ctx,
                                1,
                                lambda,
                                s.scratch.gw2.as_slice(),
                                ae.w2.as_mut_slice(),
                            );
                        },
                    ),
                }
            }
            Emit::Update(Part::Biases) => {
                let (gb2, b2) = (sb.buf(DEC, "gb"), sb.buf(DEC, "b"));
                match self.update {
                    AeUpdate::None => {}
                    AeUpdate::Sgd => sb.node(
                        NodeSpec::new("U4")
                            .reads(&[gb2, b2])
                            .writes(&[b2])
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            ctx.sgd_step(s.lr, 0.0, &s.scratch.gb2, &mut ae.b2);
                        },
                    ),
                    AeUpdate::Opt => sb.node(
                        NodeSpec::new("U4")
                            .reads(&[gb2, b2])
                            .writes(&[b2])
                            .exclusive()
                            .phase("update"),
                        move |ctx, s: &mut AeState<'_>| {
                            let ae = s.params.get_mut();
                            let opt = s.opt.as_deref_mut().expect("optimizer-mode graph");
                            opt.step_slot(ctx, 3, 0.0, &s.scratch.gb2, &mut ae.b2);
                            opt.advance();
                        },
                    ),
                }
            }
        }
    }
}

/// The KL-sparsity block: RHO (mean hidden activation, paper eq. 5's ρ̂)
/// and KL (the penalty and its backward term).
struct AeSparsity {
    n_hidden: usize,
    b: usize,
}

impl<'a> Layer<AeState<'a>> for AeSparsity {
    fn tag(&self) -> &'static str {
        "ae-sparsity"
    }

    fn declare(&self, sb: &mut StackBuilder<AeState<'a>>, what: Decl) {
        if what == Decl::Acts {
            sb.bind_dims(SPARS, "rho", "rho_hat", &[self.n_hidden], BufClass::Scratch);
            sb.bind_dims(
                SPARS,
                "s_term",
                "s_term",
                &[self.n_hidden],
                BufClass::Scratch,
            );
        }
    }

    fn emit(&self, sb: &mut StackBuilder<AeState<'a>>, what: Emit) {
        if what != Emit::Forward {
            return;
        }
        let b = self.b;
        // RHO: mean hidden activation over the batch.
        let (a2, rho_hat) = (sb.buf(ENC, "act"), sb.buf(SPARS, "rho"));
        sb.node(
            NodeSpec::new("RHO")
                .reads(&[a2])
                .writes(&[rho_hat])
                .phase("backward"),
            move |ctx, s: &mut AeState<'_>| {
                let scr = &mut *s.scratch;
                let (a2m, out) = (&scr.a2, &mut scr.rho_hat);
                ctx.colmean(a2m.rows_range(0, b), out);
            },
        );
        // KL: sparsity penalty and its backward term s(ρ̂) (writes a state
        // scalar, hence exclusive).
        let s_term = sb.buf(SPARS, "s_term");
        sb.node(
            NodeSpec::new("KL")
                .reads(&[rho_hat])
                .writes(&[s_term])
                .exclusive()
                .phase("backward"),
            move |_ctx, s: &mut AeState<'_>| {
                let cfg = *s.params.get().config();
                let scr = &mut *s.scratch;
                s.cost.sparsity_penalty = if cfg.sparsity_weight > 0.0 {
                    // kl_sparsity returns the raw KL sum; the objective's
                    // penalty term is beta times it (paper eq. 5).
                    cfg.sparsity_weight as f64
                        * kl_sparsity(
                            cfg.sparsity_target,
                            cfg.sparsity_weight,
                            &scr.rho_hat,
                            &mut scr.s_term,
                        )
                } else {
                    scr.s_term.fill(0.0);
                    0.0
                };
            },
        );
    }
}

/// Cost probe: reconstruction + weight-decay terms (writes state scalars
/// the buffer analysis cannot see, hence exclusive). No buffers.
struct AeCostProbe {
    b: usize,
}

impl<'a> Layer<AeState<'a>> for AeCostProbe {
    fn tag(&self) -> &'static str {
        "ae-cost"
    }

    fn emit(&self, sb: &mut StackBuilder<AeState<'a>>, what: Emit) {
        if what != Emit::Forward {
            return;
        }
        let b = self.b;
        let (a3, x, w1, w2) = (
            sb.buf(DEC, "act"),
            sb.global("x"),
            sb.buf(ENC, "w"),
            sb.buf(DEC, "w"),
        );
        sb.node(
            NodeSpec::new("COST")
                .reads(&[a3, x, w1, w2])
                .exclusive()
                .phase("backward"),
            move |ctx, s: &mut AeState<'_>| {
                let ae = s.params.get();
                s.cost.reconstruction =
                    ctx.frob_dist_sq(s.scratch.a3.rows_range(0, b), s.x) / (2.0 * b as f64);
                let lambda = ae.config().weight_decay as f64;
                s.cost.weight_penalty = 0.5
                    * lambda
                    * (vecops::sum_sq(ctx.backend().par(), ae.w1.as_slice())
                        + vecops::sum_sq(ctx.backend().par(), ae.w2.as_slice()));
            },
        );
    }
}

/// Builds the AE step over `b` examples as a [`StackBuilder`] recipe over
/// the encoder/decoder/sparsity/cost layers, whose declaration order is
/// exactly the serial op order of the classic `cost_and_grad`
/// (+ `apply_gradients`) pair. Storage is bound to the fields of
/// [`AeScratch`]; the declarations describe sizes and lifetimes to the
/// planner and executor.
///
/// Public so integration tests can run every shipped graph shape through
/// [`TaskGraph::verify`]; training entry points use it via
/// [`ae_step_graph`] and friends.
pub fn build_ae_graph<'a>(
    n_visible: usize,
    n_hidden: usize,
    b: usize,
    update: AeUpdate,
) -> TaskGraph<'static, AeState<'a>> {
    let mut sb: StackBuilder<AeState<'a>> = StackBuilder::new();
    let enc = AeEncode {
        n_visible,
        n_hidden,
        b,
        update,
    };
    let dec = AeDecode {
        n_visible,
        n_hidden,
        b,
        update,
    };
    let spars = AeSparsity { n_hidden, b };
    let cost = AeCostProbe { b };

    // Historical declaration order: input, both parameter sets, both
    // activations, deltas top-down, the sparsity pair, then gradients
    // weights-first.
    sb.bind_global_dims("x", "x", &[b, n_visible], BufClass::External);
    enc.declare(&mut sb, Decl::Params);
    dec.declare(&mut sb, Decl::Params);
    enc.declare(&mut sb, Decl::Acts);
    dec.declare(&mut sb, Decl::Acts);
    dec.declare(&mut sb, Decl::Deltas);
    enc.declare(&mut sb, Decl::Deltas);
    spars.declare(&mut sb, Decl::Acts);
    enc.declare(&mut sb, Decl::Grads(Part::Weights));
    dec.declare(&mut sb, Decl::Grads(Part::Weights));
    enc.declare(&mut sb, Decl::Grads(Part::Biases));
    dec.declare(&mut sb, Decl::Grads(Part::Biases));

    // Historical node order: F1, F2, COST, RHO+KL, D3, GW2, GB2, D2a+D2b,
    // GW1, GB1, then U1..U4 (the update layers emit nothing in `None`
    // mode).
    enc.emit(&mut sb, Emit::Forward);
    dec.emit(&mut sb, Emit::Forward);
    cost.emit(&mut sb, Emit::Forward);
    spars.emit(&mut sb, Emit::Forward);
    dec.emit(&mut sb, Emit::Backward);
    dec.emit(&mut sb, Emit::Grads(Part::Weights));
    dec.emit(&mut sb, Emit::Grads(Part::Biases));
    enc.emit(&mut sb, Emit::Backward);
    enc.emit(&mut sb, Emit::Grads(Part::Weights));
    enc.emit(&mut sb, Emit::Grads(Part::Biases));
    // Parameter updates: the graph's last rank, one node per tensor
    // (weight decay on the weights only, as in `apply_gradients`).
    enc.emit(&mut sb, Emit::Update(Part::Weights));
    dec.emit(&mut sb, Emit::Update(Part::Weights));
    enc.emit(&mut sb, Emit::Update(Part::Biases));
    dec.emit(&mut sb, Emit::Update(Part::Biases));
    sb.finish()
}

/// One AE training step scheduled as the dependency graph.
///
/// Bit-identical to [`SparseAutoencoder::train_batch`] (or, with an
/// optimizer, to `cost_and_grad` + `apply_gradients_opt`) — both run the
/// same graph, this one under the critical-path schedule. Returns the
/// batch cost and the schedule.
pub fn ae_step_graph(
    ae: &mut SparseAutoencoder,
    ctx: &ExecCtx,
    x: MatView<'_>,
    scratch: &mut AeScratch,
    lr: f32,
    opt: Option<&mut Optimizer>,
) -> (AeCost, GraphRun) {
    let b = x.rows();
    assert!(b > 0, "empty batch");
    assert!(b <= scratch.capacity(), "batch exceeds scratch capacity");
    let cfg = *ae.config();
    let update = if opt.is_some() {
        AeUpdate::Opt
    } else {
        AeUpdate::Sgd
    };
    let mut g = build_ae_graph(cfg.n_visible, cfg.n_hidden, b, update);
    let mut state = AeState {
        params: AeParams::Mut(ae),
        scratch,
        x,
        opt,
        lr,
        cost: AeCost {
            reconstruction: 0.0,
            weight_penalty: 0.0,
            sparsity_penalty: 0.0,
        },
    };
    let run = g.execute(ctx, &mut state);
    (state.cost, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AeConfig;
    use crate::exec::OptLevel;
    use crate::optim::{Rule, Schedule};
    use micdnn_sim::Platform;
    use micdnn_tensor::Mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_batch(b: usize, v: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(b, v, |_, _| rng.gen_range(0.1..0.9))
    }

    #[test]
    fn graph_step_matches_serial_step_bitwise() {
        let cfg = AeConfig::new(14, 9);
        let x = tiny_batch(12, 14, 1);

        let mut ae_serial = SparseAutoencoder::new(cfg, 2);
        let ctx_serial = ExecCtx::native(OptLevel::Improved, 3);
        let mut s_serial = AeScratch::new(&cfg, 12);

        let mut ae_graph = ae_serial.clone();
        let ctx_graph = ExecCtx::native(OptLevel::Improved, 3);
        let mut s_graph = AeScratch::new(&cfg, 12);

        for _ in 0..5 {
            let c1 = ae_serial.train_batch(&ctx_serial, x.view(), &mut s_serial, 0.3);
            let (c2, _) =
                ae_step_graph(&mut ae_graph, &ctx_graph, x.view(), &mut s_graph, 0.3, None);
            assert_eq!(c1, c2, "costs diverged");
        }
        assert_eq!(ae_serial.w1.as_slice(), ae_graph.w1.as_slice());
        assert_eq!(ae_serial.w2.as_slice(), ae_graph.w2.as_slice());
        assert_eq!(ae_serial.b1, ae_graph.b1);
        assert_eq!(ae_serial.b2, ae_graph.b2);
        assert_eq!(ctx_serial.rng_state(), ctx_graph.rng_state());
    }

    #[test]
    fn graph_step_with_optimizer_matches_serial_bitwise() {
        let cfg = AeConfig::new(10, 6);
        let x = tiny_batch(8, 10, 4);
        let slots = SparseAutoencoder::optimizer_slots(&cfg);
        let mk_opt = || Optimizer::new(Rule::Momentum { mu: 0.9 }, Schedule::Constant(0.2), &slots);

        let mut ae_serial = SparseAutoencoder::new(cfg, 5);
        let ctx_serial = ExecCtx::native(OptLevel::Improved, 6);
        let mut s_serial = AeScratch::new(&cfg, 8);
        let mut opt_serial = mk_opt();

        let mut ae_graph = ae_serial.clone();
        let ctx_graph = ExecCtx::native(OptLevel::Improved, 6);
        let mut s_graph = AeScratch::new(&cfg, 8);
        let mut opt_graph = mk_opt();

        for _ in 0..5 {
            let c1 = ae_serial.cost_and_grad(&ctx_serial, x.view(), &mut s_serial);
            ae_serial.apply_gradients_opt(&ctx_serial, &s_serial, &mut opt_serial);
            let (c2, _) = ae_step_graph(
                &mut ae_graph,
                &ctx_graph,
                x.view(),
                &mut s_graph,
                0.0,
                Some(&mut opt_graph),
            );
            assert_eq!(c1, c2, "costs diverged");
        }
        assert_eq!(ae_serial.w1.as_slice(), ae_graph.w1.as_slice());
        assert_eq!(ae_serial.w2.as_slice(), ae_graph.w2.as_slice());
        assert_eq!(ae_serial.b1, ae_graph.b1);
        assert_eq!(ae_serial.b2, ae_graph.b2);
        assert_eq!(opt_serial.steps(), opt_graph.steps());
        assert_eq!(opt_serial.state_slots(), opt_graph.state_slots());
    }

    #[test]
    fn critical_path_beats_serial_schedule() {
        let cfg = AeConfig::new(256, 512);
        let mut ae = SparseAutoencoder::new(cfg, 7);
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 8);
        let mut scratch = AeScratch::new(&cfg, 64);
        let x = tiny_batch(64, 256, 9);
        let (_, run) = ae_step_graph(&mut ae, &ctx, x.view(), &mut scratch, 0.1, None);
        assert!(
            run.critical_path < run.serial_time,
            "graph gained nothing: cp {} vs serial {}",
            run.critical_path,
            run.serial_time
        );
        assert!(
            run.speedup() > 1.0 && run.speedup() < 3.0,
            "speedup {}",
            run.speedup()
        );
        assert!((ctx.sim_time() - run.critical_path).abs() < 1e-9);
    }

    #[test]
    fn graph_training_converges() {
        let cfg = AeConfig::new(16, 8);
        let mut ae = SparseAutoencoder::new(cfg, 3);
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let x = tiny_batch(32, 16, 4);
        let mut scratch = AeScratch::new(&cfg, 32);
        let (first, _) = ae_step_graph(&mut ae, &ctx, x.view(), &mut scratch, 0.5, None);
        let mut last = first.total();
        for _ in 0..200 {
            let (c, _) = ae_step_graph(&mut ae, &ctx, x.view(), &mut scratch, 0.5, None);
            last = c.total();
        }
        assert!(last < 0.6 * first.total(), "{} -> {last}", first.total());
    }

    #[test]
    fn ae_planner_finds_no_alias_and_reports_honestly() {
        // Every AE scratch pair interferes (see module docs): the planner
        // must keep them all separate — peak equals the declared total.
        let g = build_ae_graph(1024, 4096, 100, AeUpdate::Sgd);
        let plan = g.plan();
        assert_eq!(plan.peak_elems(), plan.total_declared_elems());
        assert!(plan.num_registers() > 0);
    }
}
