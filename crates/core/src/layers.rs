//! The layer/op IR: one trait-driven graph builder behind every training
//! step in the crate.
//!
//! `ae_graph`, `cd_graph`, `finetune` and `cnn` used to hand-build
//! near-duplicate [`TaskGraph`] node lists — the same affine → nonlinearity
//! → gradient → update skeleton, re-typed three times. This module replaces
//! that with two pieces:
//!
//! * [`Layer`]: a training-step building block that knows how to *declare*
//!   its buffers (parameters, activations, deltas, gradients — with exact
//!   element counts, so the liveness planner and the verifier see true
//!   footprints) and how to *emit* its nodes (forward, backward, gradient,
//!   update — with exact read/write sets);
//! * [`StackBuilder`]: the composition surface. It wraps a [`TaskGraph`],
//!   keeps a per-layer registry of named buffer handles so layers can
//!   reference each other's activations and deltas without sharing types,
//!   and drives declaration/emission passes over layer slices.
//!
//! # The bit-identity contract
//!
//! The executor replays nodes in declaration order under `run_serial` and
//! uses buffer declaration order for planner aliasing, so *the recipe owns
//! the order*: a graph rebuilt on this IR is bit-identical to its
//! hand-built ancestor exactly when the recipe declares buffers and emits
//! nodes in the historical sequence. That is why the hooks are
//! fine-grained — [`Decl`] and [`Emit`] passes are separate per tensor
//! class and per parameter [`Part`], letting e.g. the AE recipe declare
//! deltas top-down but gradients weights-before-biases, as its serial
//! ancestor did. The pinning tests in `tests/graph_exec_pinning.rs` hold
//! every shipped recipe to the pre-refactor goldens byte-for-byte.
//!
//! # Plugging in a new layer
//!
//! A layer implements [`Layer<S>`] for the state type `S` its node bodies
//! run against. Layers that only need an arena, a batch, parameters and a
//! loss slot (the supervised family: [`Dense`], [`SoftmaxXent`],
//! [`Conv2d`], [`MaxPool2d`]) are written once against the [`StackState`]
//! host trait and reused by every network whose state implements it
//! (fine-tuning and the CNN today). Algorithm-specific layers (the AE's
//! KL-sparsity block, the RBM's Gibbs chain) implement `Layer` directly
//! against their own state.
//!
//! Footprint rules, enforced by [`TaskGraph::verify`] on every shipped
//! recipe (pinned at 0 errors / 0 warnings in `tests/verify_properties.rs`):
//!
//! * every buffer a node body touches must appear in its `reads`/`writes`;
//! * buffers are declared with their true element counts (capacity rows ×
//!   width — bodies slice to the live batch);
//! * parameters are `External` (no arena storage; reads/writes still order
//!   updates after every use), activations that outlive the step are
//!   `Pinned`, everything else is `Scratch` so the planner may alias it;
//! * nodes that write state the buffer analysis cannot see (loss scalars,
//!   optimizer schedules) are `exclusive`; nodes that consume the sampling
//!   stream are `stochastic`.

use crate::exec::ExecCtx;
use crate::finetune::SoftmaxLayer;
use crate::graph::{BufClass, BufId, NodeSpec, TaskGraph, Workspace};
use micdnn_kernels::conv;
use micdnn_kernels::OpCost;
use micdnn_tensor::{Mat, MatView, MatViewMut};

/// Which parameter tensor of a layer a gradient or update pass targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Part {
    /// The weight matrix.
    Weights,
    /// The bias vector(s).
    Biases,
}

/// One buffer-declaration pass. Recipes call these in their historical
/// order; a layer binds nothing for passes that do not apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decl {
    /// Parameter tensors (`External`).
    Params,
    /// Forward activations and forward-only scratch.
    Acts,
    /// Backward deltas.
    Deltas,
    /// Gradient (or sufficient-statistic) tensors for one [`Part`].
    Grads(Part),
}

/// One node-emission pass. Recipes call these in their historical order;
/// a layer emits nothing for passes that do not apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// Forward nodes.
    Forward,
    /// Backward (delta-producing) nodes.
    Backward,
    /// Gradient nodes for one [`Part`].
    Grads(Part),
    /// Parameter-update nodes for one [`Part`].
    Update(Part),
}

/// A training-step building block: declares its buffer footprints and
/// emits its dataflow nodes into a [`StackBuilder`].
///
/// Hooks default to no-ops so a layer only writes the passes it
/// participates in (a pooling layer has no parameters, a cost probe has
/// no buffers at all).
pub trait Layer<S> {
    /// Short tag for diagnostics.
    fn tag(&self) -> &'static str;

    /// Declare this layer's buffers for pass `what`.
    fn declare(&self, sb: &mut StackBuilder<S>, what: Decl) {
        let _ = (sb, what);
    }

    /// Emit this layer's node(s) for pass `what`.
    fn emit(&self, sb: &mut StackBuilder<S>, what: Emit) {
        let _ = (sb, what);
    }
}

/// Composes [`Layer`]s into one verified [`TaskGraph`].
///
/// Wraps the graph with a registry of named buffer handles — global keys
/// for stack-level buffers (the input batch) and `(slot, key)` pairs for
/// per-layer buffers — so layers reference each other's tensors by
/// position without sharing concrete types.
pub struct StackBuilder<S> {
    g: TaskGraph<'static, S>,
    slots: Vec<Vec<(&'static str, BufId)>>,
    globals: Vec<(&'static str, BufId)>,
}

impl<S> Default for StackBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> StackBuilder<S> {
    /// An empty builder.
    pub fn new() -> Self {
        StackBuilder {
            g: TaskGraph::new(),
            slots: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Declares a stack-level buffer and registers it under `key`.
    pub fn bind_global(
        &mut self,
        key: &'static str,
        name: &'static str,
        elems: usize,
        class: BufClass,
    ) -> BufId {
        let id = self.g.declare(name, elems, class);
        self.globals.push((key, id));
        id
    }

    /// Declares a *shaped* stack-level buffer ([`TaskGraph::declare_dims`])
    /// and registers it under `key`.
    pub fn bind_global_dims(
        &mut self,
        key: &'static str,
        name: &'static str,
        dims: &[usize],
        class: BufClass,
    ) -> BufId {
        let id = self.g.declare_dims(name, dims, class);
        self.globals.push((key, id));
        id
    }

    /// Declares a buffer and registers it under `(slot, key)`.
    pub fn bind(
        &mut self,
        slot: usize,
        key: &'static str,
        name: &'static str,
        elems: usize,
        class: BufClass,
    ) -> BufId {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, Vec::new);
        }
        debug_assert!(
            self.slots[slot].iter().all(|&(k, _)| k != key),
            "slot {slot} already binds {key:?}"
        );
        let id = self.g.declare(name, elems, class);
        self.slots[slot].push((key, id));
        id
    }

    /// Declares a *shaped* buffer ([`TaskGraph::declare_dims`]) and
    /// registers it under `(slot, key)`.
    pub fn bind_dims(
        &mut self,
        slot: usize,
        key: &'static str,
        name: &'static str,
        dims: &[usize],
        class: BufClass,
    ) -> BufId {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, Vec::new);
        }
        debug_assert!(
            self.slots[slot].iter().all(|&(k, _)| k != key),
            "slot {slot} already binds {key:?}"
        );
        let id = self.g.declare_dims(name, dims, class);
        self.slots[slot].push((key, id));
        id
    }

    /// Declares a counter-RNG cursor on the underlying graph
    /// ([`TaskGraph::declare_rng_cursor`]) for the certifier's determinism
    /// audit.
    pub fn declare_rng_cursor(&mut self, name: &'static str) {
        self.g.declare_rng_cursor(name);
    }

    /// Handle of the stack-level buffer bound under `key`.
    pub fn global(&self, key: &str) -> BufId {
        self.globals
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, id)| id)
            .unwrap_or_else(|| panic!("no global buffer bound under {key:?}"))
    }

    /// Handle of the buffer bound under `(slot, key)`.
    pub fn buf(&self, slot: usize, key: &str) -> BufId {
        self.slots
            .get(slot)
            .and_then(|s| s.iter().find(|&&(k, _)| k == key))
            .map(|&(_, id)| id)
            .unwrap_or_else(|| panic!("no buffer bound under slot {slot}, key {key:?}"))
    }

    /// Adds a node to the underlying graph (pass-through; layers emit
    /// through this so footprints and order are explicit at the call site).
    pub fn node(&mut self, spec: NodeSpec, task: impl FnMut(&ExecCtx, &mut S) + Send + 'static) {
        self.g.node(spec, task);
    }

    /// Runs one declaration pass over `layers` in slice order.
    pub fn declare_each(&mut self, layers: &[&dyn Layer<S>], what: Decl) {
        for l in layers {
            l.declare(self, what);
        }
    }

    /// Runs one emission pass over `layers` in slice order.
    pub fn emit_each(&mut self, layers: &[&dyn Layer<S>], what: Emit) {
        for l in layers {
            l.emit(self, what);
        }
    }

    /// The composed graph. Verification is not forced here: every
    /// execution path (`run_serial` / `execute`) already verifies in debug
    /// builds, and the shipped-recipe pins in `tests/verify_properties.rs`
    /// hold each stack at 0 errors / 0 warnings.
    pub fn finish(self) -> TaskGraph<'static, S> {
        self.g
    }
}

// ---------------------------------------------------------------------------
// The supervised family: host traits + generic layers.
// ---------------------------------------------------------------------------

/// Split borrow of everything a supervised step node touches: the planned
/// arena, the batch, the labels, and the model parameters. Produced by
/// [`StackState::parts`]; the fields are disjoint so node bodies can hold
/// arena and parameter borrows at once.
pub struct StepParts<'s, P: ?Sized> {
    /// The liveness-planned arena the graph's buffers live in.
    pub ws: &'s mut Workspace,
    /// The input batch (`b x in_dim`; `b` is the live batch size).
    pub x: MatView<'s>,
    /// One class label per batch row.
    pub labels: &'s [usize],
    /// Learning rate for the update nodes.
    pub lr: f32,
    /// Scalar loss output (written by the loss node, exclusive).
    pub loss: &'s mut f64,
    /// The model parameters.
    pub params: &'s mut P,
}

/// Host state for the generic supervised layers: anything that can hand a
/// node body a [`StepParts`] split borrow.
pub trait StackState {
    /// The parameter store ([`DenseParams`] at minimum).
    type Params: ?Sized;
    /// The split borrow.
    fn parts(&mut self) -> StepParts<'_, Self::Params>;
}

/// Parameter access for [`Dense`] and [`SoftmaxXent`] layers.
pub trait DenseParams {
    /// Parameters of dense layer `idx` as `(weights h x v, biases h)`.
    fn dense(&mut self, idx: usize) -> (&mut Mat, &mut Vec<f32>);
    /// The classification head.
    fn softmax(&mut self) -> &mut SoftmaxLayer;
    /// L2 weight decay applied to weight (not bias) updates.
    fn weight_decay(&self) -> f32;
}

/// Parameter access for [`Conv2d`] layers.
pub trait ConvParams: DenseParams {
    /// Parameters of conv layer `idx` as `(filters c_out x k*k, biases
    /// c_out)`.
    fn conv(&mut self, idx: usize) -> (&mut Mat, &mut Vec<f32>);
}

/// Where a layer's upstream delta and weights come from during backprop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Above {
    /// A dense layer (its [`DenseParams::dense`] index).
    Dense(usize),
    /// The softmax head.
    Head,
}

/// A fully connected sigmoid layer: `a = sigmoid(input W^T + b)`, plain
/// SGD updates. The generic form of the fine-tuning stack's encoder layer,
/// reused by the CNN's fully connected tail.
pub struct Dense {
    /// Registry slot (binds `w`, `b`, `act`, `delta`, `gw`, `gb`).
    pub slot: usize,
    /// [`DenseParams::dense`] index.
    pub idx: usize,
    /// Slot whose `act` feeds this layer; `None` reads the global `x`.
    pub below: Option<usize>,
    /// Slot whose `delta` drives this layer's backprop.
    pub above_slot: usize,
    /// Where the upstream weights live.
    pub above: Above,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Batch-row capacity buffers are declared against.
    pub cap: usize,
}

impl Dense {
    fn input_buf<S>(&self, sb: &StackBuilder<S>) -> BufId {
        match self.below {
            None => sb.global("x"),
            Some(slot) => sb.buf(slot, "act"),
        }
    }
}

impl<S> Layer<S> for Dense
where
    S: StackState,
    S::Params: DenseParams,
{
    fn tag(&self) -> &'static str {
        "dense"
    }

    fn declare(&self, sb: &mut StackBuilder<S>, what: Decl) {
        let (slot, h, v, cap) = (self.slot, self.out_dim, self.in_dim, self.cap);
        match what {
            Decl::Params => {
                sb.bind_dims(slot, "w", "layer.w", &[h, v], BufClass::External);
                sb.bind_dims(slot, "b", "layer.b", &[h], BufClass::External);
            }
            // Activations stay live from the forward pass until the last
            // layer-gradient reads them, so they are pinned, not aliased.
            Decl::Acts => {
                sb.bind_dims(slot, "act", "act", &[cap, h], BufClass::Pinned);
            }
            Decl::Deltas => {
                sb.bind_dims(slot, "delta", "delta", &[cap, h], BufClass::Scratch);
            }
            Decl::Grads(Part::Weights) => {
                sb.bind_dims(slot, "gw", "layer.gw", &[h, v], BufClass::Scratch);
            }
            Decl::Grads(Part::Biases) => {
                sb.bind_dims(slot, "gb", "layer.gb", &[h], BufClass::Scratch);
            }
        }
    }

    fn emit(&self, sb: &mut StackBuilder<S>, what: Emit) {
        let slot = self.slot;
        let idx = self.idx;
        let (h, v) = (self.out_dim, self.in_dim);
        match what {
            // forward: act = sigmoid(input W^T + b).
            Emit::Forward => {
                let inp = self.input_buf(sb);
                let a_cur = sb.buf(slot, "act");
                let (w_id, b_id) = (sb.buf(slot, "w"), sb.buf(slot, "b"));
                let from_x = self.below.is_none();
                sb.node(
                    NodeSpec::new("forward")
                        .reads(&[inp, w_id, b_id])
                        .writes(&[a_cur]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let (w, bias) = p.params.dense(idx);
                        if from_x {
                            let out = &mut p.ws.buf_mut(a_cur)[..b * h];
                            let mut vv = MatViewMut::new(out, b, h);
                            ctx.gemm(1.0, p.x, false, w.view(), true, 0.0, &mut vv);
                            ctx.bias_sigmoid_rows(bias, &mut vv);
                        } else {
                            let [i, out] = p.ws.bufs_mut([inp, a_cur]);
                            let iv = MatView::new(&i[..b * v], b, v);
                            let mut vv = MatViewMut::new(&mut out[..b * h], b, h);
                            ctx.gemm(1.0, iv, false, w.view(), true, 0.0, &mut vv);
                            ctx.bias_sigmoid_rows(bias, &mut vv);
                        }
                    },
                );
            }
            // backprop: delta = (up_delta W_up) ⊙ σ'(act).
            Emit::Backward => {
                let up = sb.buf(self.above_slot, "delta");
                let up_w = sb.buf(self.above_slot, "w");
                let (a_cur, d_cur) = (sb.buf(slot, "act"), sb.buf(slot, "delta"));
                let above = self.above;
                sb.node(
                    NodeSpec::new("backprop")
                        .reads(&[up, up_w, a_cur])
                        .writes(&[d_cur]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let w_next: &Mat = match above {
                            Above::Head => &p.params.softmax().w,
                            Above::Dense(i) => p.params.dense(i).0,
                        };
                        let uw = w_next.rows();
                        let [u, a, d] = p.ws.bufs_mut([up, a_cur, d_cur]);
                        let uv = MatView::new(&u[..b * uw], b, uw);
                        let mut dv = MatViewMut::new(&mut d[..b * h], b, h);
                        ctx.gemm(1.0, uv, false, w_next.view(), false, 0.0, &mut dv);
                        ctx.backend()
                            .sigmoid_backprop(&a[..b * h], dv.as_mut_slice());
                        ctx.charge_cost(ctx.backend().sigmoid_backprop_cost(b * h));
                    },
                );
            }
            // gw = delta^T input ; gb = colsum(delta).
            Emit::Grads(Part::Weights) => {
                let inp = self.input_buf(sb);
                let (d_cur, gw_cur) = (sb.buf(slot, "delta"), sb.buf(slot, "gw"));
                let from_x = self.below.is_none();
                sb.node(
                    NodeSpec::new("layer-gw")
                        .reads(&[d_cur, inp])
                        .writes(&[gw_cur]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        if from_x {
                            let [d, gw] = p.ws.bufs_mut([d_cur, gw_cur]);
                            let dv = MatView::new(&d[..b * h], b, h);
                            let mut gv = MatViewMut::new(gw, h, v);
                            ctx.gemm(1.0, dv, true, p.x, false, 0.0, &mut gv);
                        } else {
                            let [d, a, gw] = p.ws.bufs_mut([d_cur, inp, gw_cur]);
                            let dv = MatView::new(&d[..b * h], b, h);
                            let av = MatView::new(&a[..b * v], b, v);
                            let mut gv = MatViewMut::new(gw, h, v);
                            ctx.gemm(1.0, dv, true, av, false, 0.0, &mut gv);
                        }
                    },
                );
            }
            Emit::Grads(Part::Biases) => {
                let (d_cur, gb_cur) = (sb.buf(slot, "delta"), sb.buf(slot, "gb"));
                sb.node(
                    NodeSpec::new("layer-gb").reads(&[d_cur]).writes(&[gb_cur]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [d, gb] = p.ws.bufs_mut([d_cur, gb_cur]);
                        ctx.colsum(MatView::new(&d[..b * h], b, h), gb);
                    },
                );
            }
            // SGD updates (weight decay on the weights only).
            Emit::Update(Part::Weights) => {
                let (gw_cur, w_id) = (sb.buf(slot, "gw"), sb.buf(slot, "w"));
                sb.node(
                    NodeSpec::new("layer-w-sgd")
                        .reads(&[gw_cur])
                        .writes(&[w_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let lambda = p.params.weight_decay();
                        let (w, _) = p.params.dense(idx);
                        ctx.sgd_step(p.lr, lambda, p.ws.buf(gw_cur), w.as_mut_slice());
                    },
                );
            }
            Emit::Update(Part::Biases) => {
                let (gb_cur, b_id) = (sb.buf(slot, "gb"), sb.buf(slot, "b"));
                sb.node(
                    NodeSpec::new("layer-b-sgd")
                        .reads(&[gb_cur])
                        .writes(&[b_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let (_, bias) = p.params.dense(idx);
                        ctx.sgd_step(p.lr, 0.0, p.ws.buf(gb_cur), bias);
                    },
                );
            }
        }
    }
}

/// The softmax + cross-entropy head: forward probabilities, in-place
/// `(p - onehot) / b` delta (which doubles as the stack's topmost upstream
/// delta), gradients, SGD updates.
pub struct SoftmaxXent {
    /// Registry slot (binds `w`, `b`, `delta`, `gw`, `gb`). Downstream
    /// layers backprop against this slot's `delta` and `w`.
    pub slot: usize,
    /// Slot whose `act` feeds the head.
    pub below: usize,
    /// Input (code) width.
    pub in_dim: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Batch-row capacity buffers are declared against.
    pub cap: usize,
}

impl<S> Layer<S> for SoftmaxXent
where
    S: StackState,
    S::Params: DenseParams,
{
    fn tag(&self) -> &'static str {
        "softmax-xent"
    }

    fn declare(&self, sb: &mut StackBuilder<S>, what: Decl) {
        let (slot, c, code, cap) = (self.slot, self.n_classes, self.in_dim, self.cap);
        match what {
            Decl::Params => {
                sb.bind_dims(slot, "w", "softmax.w", &[c, code], BufClass::External);
                sb.bind_dims(slot, "b", "softmax.b", &[c], BufClass::External);
            }
            Decl::Acts => {}
            // The head's "delta" holds probabilities first, then the
            // in-place xent delta — one buffer, two lives.
            Decl::Deltas => {
                sb.bind_dims(slot, "delta", "dsoft", &[cap, c], BufClass::Scratch);
            }
            Decl::Grads(Part::Weights) => {
                sb.bind_dims(slot, "gw", "softmax.gw", &[c, code], BufClass::Scratch);
            }
            Decl::Grads(Part::Biases) => {
                sb.bind_dims(slot, "gb", "softmax.gb", &[c], BufClass::Scratch);
            }
        }
    }

    fn emit(&self, sb: &mut StackBuilder<S>, what: Emit) {
        let slot = self.slot;
        let (c, code) = (self.n_classes, self.in_dim);
        match what {
            // softmax: probabilities into the delta buffer.
            Emit::Forward => {
                let a_top = sb.buf(self.below, "act");
                let dsoft = sb.buf(slot, "delta");
                let (w_id, b_id) = (sb.buf(slot, "w"), sb.buf(slot, "b"));
                sb.node(
                    NodeSpec::new("softmax")
                        .reads(&[a_top, w_id, b_id])
                        .writes(&[dsoft]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [a, probs] = p.ws.bufs_mut([a_top, dsoft]);
                        let av = MatView::new(&a[..b * code], b, code);
                        let mut pv = MatViewMut::new(&mut probs[..b * c], b, c);
                        p.params.softmax().forward_into(ctx, av, &mut pv);
                    },
                );
            }
            // Loss + in-place softmax delta (p - onehot) / b. Writes the
            // state's loss scalar, so it must stay exclusive.
            Emit::Backward => {
                let dsoft = sb.buf(slot, "delta");
                sb.node(
                    NodeSpec::new("xent-delta")
                        .reads(&[dsoft])
                        .writes(&[dsoft])
                        .exclusive(),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let probs = &mut p.ws.buf_mut(dsoft)[..b * c];
                        *p.loss = mean_nll(MatView::new(probs, b, c), p.labels);
                        let inv_b = 1.0 / b as f32;
                        for (r, &label) in p.labels.iter().enumerate() {
                            let row = &mut probs[r * c..(r + 1) * c];
                            row[label] -= 1.0;
                            for pv in row.iter_mut() {
                                *pv *= inv_b;
                            }
                        }
                        ctx.charge_cost(OpCost::elementwise(b * c, 1, 2));
                    },
                );
            }
            Emit::Grads(Part::Weights) => {
                let a_top = sb.buf(self.below, "act");
                let (dsoft, gw_id) = (sb.buf(slot, "delta"), sb.buf(slot, "gw"));
                sb.node(
                    NodeSpec::new("softmax-gw")
                        .reads(&[dsoft, a_top])
                        .writes(&[gw_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [d, a, gw] = p.ws.bufs_mut([dsoft, a_top, gw_id]);
                        let dv = MatView::new(&d[..b * c], b, c);
                        let av = MatView::new(&a[..b * code], b, code);
                        let mut gv = MatViewMut::new(gw, c, code);
                        ctx.gemm(1.0, dv, true, av, false, 0.0, &mut gv);
                    },
                );
            }
            Emit::Grads(Part::Biases) => {
                let (dsoft, gb_id) = (sb.buf(slot, "delta"), sb.buf(slot, "gb"));
                sb.node(
                    NodeSpec::new("softmax-gb").reads(&[dsoft]).writes(&[gb_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [d, gb] = p.ws.bufs_mut([dsoft, gb_id]);
                        ctx.colsum(MatView::new(&d[..b * c], b, c), gb);
                    },
                );
            }
            Emit::Update(Part::Weights) => {
                let (gw_id, w_id) = (sb.buf(slot, "gw"), sb.buf(slot, "w"));
                sb.node(
                    NodeSpec::new("softmax-w-sgd")
                        .reads(&[gw_id])
                        .writes(&[w_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let lambda = p.params.weight_decay();
                        let head = p.params.softmax();
                        ctx.sgd_step(p.lr, lambda, p.ws.buf(gw_id), head.w.as_mut_slice());
                    },
                );
            }
            Emit::Update(Part::Biases) => {
                let (gb_id, b_id) = (sb.buf(slot, "gb"), sb.buf(slot, "b"));
                sb.node(
                    NodeSpec::new("softmax-b-sgd")
                        .reads(&[gb_id])
                        .writes(&[b_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let head = p.params.softmax();
                        ctx.sgd_step(p.lr, 0.0, p.ws.buf(gb_id), &mut head.b);
                    },
                );
            }
        }
    }
}

/// Mean negative log-likelihood of the labeled rows under `probs`.
pub(crate) fn mean_nll(probs: MatView<'_>, labels: &[usize]) -> f64 {
    let mut nll = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        // `max` returns the other operand on NaN, which would launder a
        // poisoned probability into a finite ~27.6 — the loss must stay
        // NaN so the supervisor's divergence sentinel can trip.
        let p = f64::from(probs.get(r, label));
        nll -= if p.is_nan() { p } else { p.max(1e-12).ln() };
    }
    nll / labels.len().max(1) as f64
}

// ---------------------------------------------------------------------------
// Convolutional layers: the first non-paper workloads on the graph IR.
// ---------------------------------------------------------------------------

/// A single-input-channel 2-D convolution lowered onto the existing GEMM:
/// `im2col` gathers `k x k` patches, one GEMM against the `c_out x k*k`
/// filter bank produces all output pixels, and the fused bias + sigmoid
/// sweep treats channels as columns. Activation layout is
/// `(b * oh * ow) x c_out`, which the GEMM writes directly — no
/// re-layout pass.
///
/// Backward needs no `col2im`: this layer sits at the stack's input, so
/// only filter gradients (`delta^T col`) and bias column-sums are needed.
pub struct Conv2d {
    /// Registry slot (binds `w`, `b`, `col`, `act`, `delta`, `gw`, `gb`).
    pub slot: usize,
    /// [`ConvParams::conv`] index.
    pub idx: usize,
    /// Input image side (single channel, `side * side` per batch row).
    pub side: usize,
    /// Filter side `k` (stride 1, no padding: output side is
    /// `side - k + 1`).
    pub kernel: usize,
    /// Number of output channels.
    pub channels: usize,
    /// Batch-row capacity buffers are declared against.
    pub cap: usize,
}

impl Conv2d {
    /// Output side (`side - k + 1`).
    pub fn out_side(&self) -> usize {
        self.side - self.kernel + 1
    }

    fn patch(&self) -> usize {
        self.kernel * self.kernel
    }
}

impl<S> Layer<S> for Conv2d
where
    S: StackState,
    S::Params: ConvParams,
{
    fn tag(&self) -> &'static str {
        "conv2d"
    }

    fn declare(&self, sb: &mut StackBuilder<S>, what: Decl) {
        let (slot, c, kk, cap) = (self.slot, self.channels, self.patch(), self.cap);
        let pix = self.out_side() * self.out_side();
        match what {
            Decl::Params => {
                sb.bind_dims(slot, "w", "conv.w", &[c, kk], BufClass::External);
                sb.bind_dims(slot, "b", "conv.b", &[c], BufClass::External);
            }
            // The patch matrix stays live until the filter-gradient GEMM
            // re-reads it; the activations feed pooling and σ'.
            Decl::Acts => {
                sb.bind_dims(slot, "col", "conv.col", &[cap * pix, kk], BufClass::Scratch);
                sb.bind_dims(slot, "act", "conv.act", &[cap * pix, c], BufClass::Pinned);
            }
            Decl::Deltas => {
                sb.bind_dims(
                    slot,
                    "delta",
                    "conv.delta",
                    &[cap * pix, c],
                    BufClass::Scratch,
                );
            }
            Decl::Grads(Part::Weights) => {
                sb.bind_dims(slot, "gw", "conv.gw", &[c, kk], BufClass::Scratch);
            }
            Decl::Grads(Part::Biases) => {
                sb.bind_dims(slot, "gb", "conv.gb", &[c], BufClass::Scratch);
            }
        }
    }

    fn emit(&self, sb: &mut StackBuilder<S>, what: Emit) {
        let slot = self.slot;
        let idx = self.idx;
        let (side, k, c, kk) = (self.side, self.kernel, self.channels, self.patch());
        let pix = self.out_side() * self.out_side();
        match what {
            Emit::Forward => {
                // im2col: gather k x k patches from the input batch.
                let x_id = sb.global("x");
                let col_id = sb.buf(slot, "col");
                sb.node(
                    NodeSpec::new("im2col").reads(&[x_id]).writes(&[col_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let col = &mut p.ws.buf_mut(col_id)[..b * pix * kk];
                        conv::im2col(ctx.backend().par(), p.x.as_slice(), b, side, k, col);
                        ctx.charge_cost(OpCost::memcpy(b * pix * kk));
                    },
                );
                // conv-forward: one GEMM against the filter bank, then the
                // per-channel bias + sigmoid sweep (channels are columns).
                let a_id = sb.buf(slot, "act");
                let (w_id, b_id) = (sb.buf(slot, "w"), sb.buf(slot, "b"));
                sb.node(
                    NodeSpec::new("conv-forward")
                        .reads(&[col_id, w_id, b_id])
                        .writes(&[a_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let (w, bias) = p.params.conv(idx);
                        let [col, act] = p.ws.bufs_mut([col_id, a_id]);
                        let cv = MatView::new(&col[..b * pix * kk], b * pix, kk);
                        let mut av = MatViewMut::new(&mut act[..b * pix * c], b * pix, c);
                        ctx.gemm(1.0, cv, false, w.view(), true, 0.0, &mut av);
                        ctx.bias_sigmoid_rows(bias, &mut av);
                    },
                );
            }
            // conv-dsig: the unpooled delta arrives linear (pooling has no
            // nonlinearity); apply this layer's σ' in place.
            Emit::Backward => {
                let (a_id, d_id) = (sb.buf(slot, "act"), sb.buf(slot, "delta"));
                sb.node(
                    NodeSpec::new("conv-dsig")
                        .reads(&[a_id, d_id])
                        .writes(&[d_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [a, d] = p.ws.bufs_mut([a_id, d_id]);
                        let n = b * pix * c;
                        ctx.backend().sigmoid_backprop(&a[..n], &mut d[..n]);
                        ctx.charge_cost(ctx.backend().sigmoid_backprop_cost(n));
                    },
                );
            }
            // gw = delta^T col ; gb = colsum(delta).
            Emit::Grads(Part::Weights) => {
                let (d_id, col_id, gw_id) = (
                    sb.buf(slot, "delta"),
                    sb.buf(slot, "col"),
                    sb.buf(slot, "gw"),
                );
                sb.node(
                    NodeSpec::new("conv-gw")
                        .reads(&[d_id, col_id])
                        .writes(&[gw_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [d, col, gw] = p.ws.bufs_mut([d_id, col_id, gw_id]);
                        let dv = MatView::new(&d[..b * pix * c], b * pix, c);
                        let cv = MatView::new(&col[..b * pix * kk], b * pix, kk);
                        let mut gv = MatViewMut::new(gw, c, kk);
                        ctx.gemm(1.0, dv, true, cv, false, 0.0, &mut gv);
                    },
                );
            }
            Emit::Grads(Part::Biases) => {
                let (d_id, gb_id) = (sb.buf(slot, "delta"), sb.buf(slot, "gb"));
                sb.node(
                    NodeSpec::new("conv-gb").reads(&[d_id]).writes(&[gb_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [d, gb] = p.ws.bufs_mut([d_id, gb_id]);
                        ctx.colsum(MatView::new(&d[..b * pix * c], b * pix, c), gb);
                    },
                );
            }
            Emit::Update(Part::Weights) => {
                let (gw_id, w_id) = (sb.buf(slot, "gw"), sb.buf(slot, "w"));
                sb.node(
                    NodeSpec::new("conv-w-sgd").reads(&[gw_id]).writes(&[w_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let lambda = p.params.weight_decay();
                        let (w, _) = p.params.conv(idx);
                        ctx.sgd_step(p.lr, lambda, p.ws.buf(gw_id), w.as_mut_slice());
                    },
                );
            }
            Emit::Update(Part::Biases) => {
                let (gb_id, b_id) = (sb.buf(slot, "gb"), sb.buf(slot, "b"));
                sb.node(
                    NodeSpec::new("conv-b-sgd").reads(&[gb_id]).writes(&[b_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let (_, bias) = p.params.conv(idx);
                        ctx.sgd_step(p.lr, 0.0, p.ws.buf(gb_id), bias);
                    },
                );
            }
        }
    }
}

/// Non-overlapping 2-D max pooling over [`Conv2d`] activations
/// (`(b * oh * ow) x c` in, `b x (c * ph * pw)` out, argmax indices kept
/// for the backward scatter). Parameter-free.
pub struct MaxPool2d {
    /// Registry slot (binds `act`, `idx`, `delta`).
    pub slot: usize,
    /// The conv layer's slot (input `act`, output of the backward
    /// scatter into its `delta`).
    pub below: usize,
    /// Slot whose `delta` drives this layer's backprop.
    pub above_slot: usize,
    /// Where the upstream weights live.
    pub above: Above,
    /// Conv output side (pooling input is `in_side x in_side` per
    /// channel).
    pub in_side: usize,
    /// Channels.
    pub channels: usize,
    /// Pooling window / stride (non-overlapping).
    pub pool: usize,
    /// Batch-row capacity buffers are declared against.
    pub cap: usize,
}

impl MaxPool2d {
    /// Pooled side (`in_side / pool`; construction asserts divisibility).
    pub fn out_side(&self) -> usize {
        self.in_side / self.pool
    }

    /// Pooled width per batch row (`c * ph * pw`).
    pub fn out_dim(&self) -> usize {
        self.channels * self.out_side() * self.out_side()
    }
}

impl<S> Layer<S> for MaxPool2d
where
    S: StackState,
    S::Params: DenseParams,
{
    fn tag(&self) -> &'static str {
        "maxpool2d"
    }

    fn declare(&self, sb: &mut StackBuilder<S>, what: Decl) {
        let (slot, cap) = (self.slot, self.cap);
        let out = self.out_dim();
        match what {
            // Argmax indices are written forward and read backward, so
            // they live alongside the pooled activations.
            Decl::Acts => {
                sb.bind_dims(slot, "act", "pool.act", &[cap, out], BufClass::Pinned);
                sb.bind_dims(slot, "idx", "pool.idx", &[cap, out], BufClass::Scratch);
            }
            Decl::Deltas => {
                sb.bind_dims(slot, "delta", "pool.delta", &[cap, out], BufClass::Scratch);
            }
            _ => {}
        }
    }

    fn emit(&self, sb: &mut StackBuilder<S>, what: Emit) {
        let slot = self.slot;
        let (oh, c, pool) = (self.in_side, self.channels, self.pool);
        let out = self.out_dim();
        match what {
            Emit::Forward => {
                let conv_act = sb.buf(self.below, "act");
                let (a_id, i_id) = (sb.buf(slot, "act"), sb.buf(slot, "idx"));
                sb.node(
                    NodeSpec::new("pool-forward")
                        .reads(&[conv_act])
                        .writes(&[a_id, i_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [act, pooled, pidx] = p.ws.bufs_mut([conv_act, a_id, i_id]);
                        conv::maxpool2d_forward(
                            ctx.backend().par(),
                            &act[..b * oh * oh * c],
                            b,
                            oh,
                            c,
                            pool,
                            &mut pooled[..b * out],
                            &mut pidx[..b * out],
                        );
                        let win = (pool * pool) as u32;
                        ctx.charge_cost(OpCost::elementwise(b * out, win, win));
                    },
                );
            }
            Emit::Backward => {
                // pool-delta: upstream delta through the upstream weights
                // (pooling itself is linear — no activation derivative).
                let up = sb.buf(self.above_slot, "delta");
                let up_w = sb.buf(self.above_slot, "w");
                let d_id = sb.buf(slot, "delta");
                let above = self.above;
                sb.node(
                    NodeSpec::new("pool-delta")
                        .reads(&[up, up_w])
                        .writes(&[d_id]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let w_next: &Mat = match above {
                            Above::Head => &p.params.softmax().w,
                            Above::Dense(i) => p.params.dense(i).0,
                        };
                        let uw = w_next.rows();
                        let [u, d] = p.ws.bufs_mut([up, d_id]);
                        let uv = MatView::new(&u[..b * uw], b, uw);
                        let mut dv = MatViewMut::new(&mut d[..b * out], b, out);
                        ctx.gemm(1.0, uv, false, w_next.view(), false, 0.0, &mut dv);
                    },
                );
                // unpool: scatter each pooled delta to its argmax source
                // (windows are disjoint, so this is a plain indexed write).
                let i_id = sb.buf(slot, "idx");
                let conv_delta = sb.buf(self.below, "delta");
                sb.node(
                    NodeSpec::new("unpool")
                        .reads(&[d_id, i_id])
                        .writes(&[conv_delta]),
                    move |ctx, st: &mut S| {
                        let p = st.parts();
                        let b = p.x.rows();
                        let [d, pidx, dconv] = p.ws.bufs_mut([d_id, i_id, conv_delta]);
                        conv::maxpool2d_backward(
                            ctx.backend().par(),
                            &d[..b * out],
                            &pidx[..b * out],
                            b,
                            oh,
                            c,
                            pool,
                            &mut dconv[..b * oh * oh * c],
                        );
                        ctx.charge_cost(OpCost::memcpy(b * oh * oh * c));
                    },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullState;
    impl StackState for NullState {
        type Params = ();
        fn parts(&mut self) -> StepParts<'_, ()> {
            unreachable!("declaration-only tests never run nodes")
        }
    }

    #[test]
    fn registry_binds_and_resolves() {
        let mut sb: StackBuilder<NullState> = StackBuilder::new();
        let x = sb.bind_global("x", "x", 64, BufClass::External);
        let a = sb.bind(2, "act", "act", 32, BufClass::Pinned);
        assert_eq!(sb.global("x"), x);
        assert_eq!(sb.buf(2, "act"), a);
    }

    #[test]
    #[should_panic(expected = "no buffer bound")]
    fn missing_binding_panics_with_slot_and_key() {
        let sb: StackBuilder<NullState> = StackBuilder::new();
        sb.buf(0, "delta");
    }
}
