//! Crash-safe checkpoint/resume for long pre-training runs.
//!
//! Table I's workloads run for hours even fully optimized; related
//! many-core trainers (CHAOS, ZNN) run for days. A crash mid-run must not
//! lose the work, so the training loop can periodically snapshot
//! *everything* the run's future depends on into one `MICDNN01` container
//! record (tag 3, versioned):
//!
//! * the model weights (the embedded autoencoder/RBM record),
//! * optimizer state (momentum velocities / AdaGrad accumulators and the
//!   schedule's step counter) or CD momentum velocities,
//! * the RNG sampler position (`(seed, cursor)` of the counter-based
//!   stream allocator — sampling is a pure function of these),
//! * training progress (layer / epoch / batch / example counters).
//!
//! Because chunk and batch boundaries are a deterministic function of the
//! dataset and [`TrainConfig`](crate::train::TrainConfig), replaying the
//! stream and skipping the first `progress.batches` positions puts the
//! resumed run in *exactly* the state of the uninterrupted one: training
//! N epochs, checkpointing, restarting the process and resuming for N
//! more is bit-identical to training 2N epochs straight. The pinned tests
//! in `tests/checkpoint_resume.rs` enforce this for both building blocks.
//!
//! Files are written atomically (tmp + fsync + rename, see
//! [`model_io::atomic_write`](crate::model_io::atomic_write)): an
//! interrupted save leaves the previous checkpoint intact.

use crate::autoencoder::SparseAutoencoder;
use crate::cnn::{CnnConfig, CnnModel, CnnNet};
use crate::exec::ExecCtx;
use crate::finetune::{FineTuneModel, FineTuneNet, SoftmaxLayer};
use crate::model_io::{
    atomic_write, bad, checked_dim, read_any_header, read_autoencoder_body, read_f32, read_f64,
    read_header, read_mat, read_rbm_body, read_u64, read_vec, save_autoencoder, save_rbm,
    write_f32, write_f64, write_header, write_mat, write_slice, write_u64, TAG_AE, TAG_CKPT,
    TAG_CNN, TAG_FT, TAG_MDP, TAG_RBM,
};
use crate::optim::{Optimizer, Rule, Schedule};
use crate::train::{AeModel, RbmModel, UnsupervisedModel};
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Checkpoint record version; bump on any layout change.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Default checkpoint file name inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.mic";

/// When and where the training loop writes checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Directory holding `checkpoint.mic` (created on first write).
    pub dir: PathBuf,
    /// Write a checkpoint every N batch positions (0 = only at the end of
    /// the run and on loader errors).
    pub every_batches: u64,
}

impl CheckpointPolicy {
    /// Checkpoints into `dir` every `every_batches` batches.
    pub fn new(dir: impl Into<PathBuf>, every_batches: u64) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every_batches,
        }
    }

    /// The checkpoint file path this policy writes to.
    pub fn file(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }
}

/// Position of a run at checkpoint time. Batch/example counters are
/// cumulative since epoch 0, so they double as the resume skip count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainProgress {
    /// Stacked pre-training layer index (0 for single-model runs).
    pub layer: u64,
    /// Completed epochs (batches / batches-per-epoch).
    pub epoch: u64,
    /// Batch positions trained since the start of the run.
    pub batches: u64,
    /// Examples consumed since the start of the run.
    pub examples: u64,
}

/// The model (and its training state) stored in a checkpoint.
#[derive(Debug)]
pub enum CheckpointModel {
    /// A sparse autoencoder with its optional optimizer.
    Ae(AeModel),
    /// An RBM with its graph flag and optional CD momentum.
    Rbm(RbmModel),
    /// A multi-device replica set: device geometry, per-device RNG
    /// cursors, offline flags, and the replicated model.
    MultiDev(crate::multidev::MultiDevState),
    /// A convolutional classifier with its graph flag and label cursor.
    Cnn(CnnModel),
    /// A fine-tuning net (encoder stack + softmax head) with its graph
    /// flag and label cursor.
    FineTune(FineTuneModel),
}

/// A loaded checkpoint: everything needed to continue the run.
#[derive(Debug)]
pub struct Checkpoint {
    /// Sampler seed at save time.
    pub rng_seed: u64,
    /// Sampler streams issued at save time.
    pub rng_cursor: u64,
    /// Where the run stood.
    pub progress: TrainProgress,
    /// The restored model.
    pub model: CheckpointModel,
}

impl Checkpoint {
    /// Restores the context's sampler so stochastic ops continue the
    /// checkpointed sequence bit-identically.
    pub fn restore_rng(&self, ctx: &ExecCtx) {
        ctx.restore_rng(self.rng_seed, self.rng_cursor);
    }

    /// The embedded autoencoder model, if this is an AE checkpoint.
    pub fn into_ae(self) -> Option<AeModel> {
        match self.model {
            CheckpointModel::Ae(m) => Some(m),
            _ => None,
        }
    }

    /// The embedded RBM model, if this is an RBM checkpoint.
    pub fn into_rbm(self) -> Option<RbmModel> {
        match self.model {
            CheckpointModel::Rbm(m) => Some(m),
            _ => None,
        }
    }

    /// The embedded multi-device state, if this is a multi-device
    /// checkpoint.
    pub fn into_multidev(self) -> Option<crate::multidev::MultiDevState> {
        match self.model {
            CheckpointModel::MultiDev(s) => Some(s),
            _ => None,
        }
    }

    /// The embedded CNN model, if this is a CNN checkpoint.
    pub fn into_cnn(self) -> Option<CnnModel> {
        match self.model {
            CheckpointModel::Cnn(m) => Some(m),
            _ => None,
        }
    }

    /// The embedded fine-tune model, if this is a fine-tune checkpoint.
    pub fn into_finetune(self) -> Option<FineTuneModel> {
        match self.model {
            CheckpointModel::FineTune(m) => Some(m),
            _ => None,
        }
    }
}

// ---- rule / schedule wire encoding -------------------------------------

fn write_rule(w: &mut impl Write, rule: Rule) -> io::Result<()> {
    match rule {
        Rule::Sgd => w.write_all(&[0]),
        Rule::Momentum { mu } => {
            w.write_all(&[1])?;
            write_f32(w, mu)
        }
        Rule::AdaGrad { eps } => {
            w.write_all(&[2])?;
            write_f32(w, eps)
        }
    }
}

fn read_rule(r: &mut impl Read) -> io::Result<Rule> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    match b[0] {
        0 => Ok(Rule::Sgd),
        1 => Ok(Rule::Momentum { mu: read_f32(r)? }),
        2 => Ok(Rule::AdaGrad { eps: read_f32(r)? }),
        t => Err(bad(format!("unknown optimizer rule tag {t}"))),
    }
}

fn write_schedule(w: &mut impl Write, s: Schedule) -> io::Result<()> {
    match s {
        Schedule::Constant(r) => {
            w.write_all(&[0])?;
            write_f32(w, r)
        }
        Schedule::Step {
            base,
            factor,
            every,
        } => {
            w.write_all(&[1])?;
            write_f32(w, base)?;
            write_f32(w, factor)?;
            write_u64(w, every)
        }
        Schedule::Exponential { base, gamma } => {
            w.write_all(&[2])?;
            write_f32(w, base)?;
            write_f32(w, gamma)
        }
        Schedule::InvSqrt { base, t0 } => {
            w.write_all(&[3])?;
            write_f32(w, base)?;
            write_f64(w, t0)
        }
    }
}

fn read_schedule(r: &mut impl Read) -> io::Result<Schedule> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    match b[0] {
        0 => Ok(Schedule::Constant(read_f32(r)?)),
        1 => Ok(Schedule::Step {
            base: read_f32(r)?,
            factor: read_f32(r)?,
            every: read_u64(r)?,
        }),
        2 => Ok(Schedule::Exponential {
            base: read_f32(r)?,
            gamma: read_f32(r)?,
        }),
        3 => Ok(Schedule::InvSqrt {
            base: read_f32(r)?,
            t0: read_f64(r)?,
        }),
        t => Err(bad(format!("unknown schedule tag {t}"))),
    }
}

// ---- per-model state records -------------------------------------------

/// Writes an AE checkpoint body: embedded AE record + optimizer section.
pub(crate) fn write_ae_state(model: &AeModel, w: &mut dyn Write) -> io::Result<()> {
    let mut w = w;
    save_autoencoder(&model.ae, &mut w)?;
    match model.optimizer() {
        None => w.write_all(&[0]),
        Some(opt) => {
            w.write_all(&[1])?;
            write_rule(&mut w, opt.rule())?;
            write_schedule(&mut w, opt.schedule())?;
            write_u64(&mut w, opt.steps())?;
            let slots = opt.state_slots();
            write_u64(&mut w, slots.len() as u64)?;
            for s in slots {
                write_slice(&mut w, s)?;
            }
            Ok(())
        }
    }
}

fn read_ae_state(r: &mut impl Read) -> io::Result<AeModel> {
    let ae = read_autoencoder_body(r)?;
    let slot_lens = SparseAutoencoder::optimizer_slots(ae.config());
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let model = AeModel::new(ae);
    match flag[0] {
        0 => Ok(model),
        1 => {
            let rule = read_rule(r)?;
            let schedule = read_schedule(r)?;
            let steps = read_u64(r)?;
            let n_slots = read_u64(r)?;
            if n_slots != slot_lens.len() as u64 {
                return Err(bad(format!(
                    "optimizer has {n_slots} slots, model needs {}",
                    slot_lens.len()
                )));
            }
            let mut state = Vec::with_capacity(slot_lens.len());
            for &len in &slot_lens {
                let expect = match rule {
                    Rule::Sgd => 0,
                    Rule::Momentum { .. } | Rule::AdaGrad { .. } => len,
                };
                state.push(read_vec(r, expect)?);
            }
            Ok(model.with_optimizer(Optimizer::restore(rule, schedule, steps, state)))
        }
        t => Err(bad(format!("bad optimizer-present flag {t}"))),
    }
}

/// Writes an RBM checkpoint body: embedded RBM record + graph flag +
/// momentum section.
pub(crate) fn write_rbm_state(model: &RbmModel, w: &mut dyn Write) -> io::Result<()> {
    let mut w = w;
    save_rbm(&model.rbm, &mut w)?;
    w.write_all(&[model.uses_graph() as u8])?;
    match model.momentum_parts() {
        None => w.write_all(&[0]),
        Some((mu, vw, vb, vc)) => {
            w.write_all(&[1])?;
            write_f32(&mut w, mu)?;
            write_slice(&mut w, vw)?;
            write_slice(&mut w, vb)?;
            write_slice(&mut w, vc)
        }
    }
}

fn read_rbm_state(r: &mut impl Read) -> io::Result<RbmModel> {
    let rbm = read_rbm_body(r)?;
    let cfg = *rbm.config();
    let mut flags = [0u8; 2];
    r.read_exact(&mut flags)?;
    let use_graph = match flags[0] {
        0 => false,
        1 => true,
        t => return Err(bad(format!("bad graph flag {t}"))),
    };
    let momentum = match flags[1] {
        0 => None,
        1 => {
            let mu = read_f32(r)?;
            if !(0.0..1.0).contains(&mu) {
                return Err(bad(format!("momentum coefficient {mu} out of [0,1)")));
            }
            let vw = read_vec(r, cfg.n_visible * cfg.n_hidden)?;
            let vb = read_vec(r, cfg.n_visible)?;
            let vc = read_vec(r, cfg.n_hidden)?;
            Some((mu, vw, vb, vc))
        }
        t => return Err(bad(format!("bad momentum-present flag {t}"))),
    };
    let mut model = RbmModel::new(rbm);
    model.restore_extras(use_graph, momentum);
    Ok(model)
}

/// Writes a CNN checkpoint body: configuration, graph flag, parameter
/// tensors, and the label cursor.
pub(crate) fn write_cnn_state(model: &CnnModel, w: &mut dyn Write) -> io::Result<()> {
    let mut w = w;
    write_header(&mut w, TAG_CNN)?;
    let cfg = *model.net.config();
    for dim in [
        cfg.side,
        cfg.channels,
        cfg.kernel,
        cfg.pool,
        cfg.hidden,
        cfg.n_classes,
    ] {
        write_u64(&mut w, dim as u64)?;
    }
    write_f32(&mut w, model.net.weight_decay)?;
    w.write_all(&[model.net.uses_graph() as u8])?;
    write_mat(&mut w, &model.net.conv_w)?;
    write_slice(&mut w, &model.net.conv_b)?;
    write_mat(&mut w, &model.net.dense_w)?;
    write_slice(&mut w, &model.net.dense_b)?;
    write_mat(&mut w, &model.net.softmax.w)?;
    write_slice(&mut w, &model.net.softmax.b)?;
    let (cursor, cycle) = model.cursor_parts();
    write_u64(&mut w, cursor)?;
    write_u64(&mut w, cycle)
}

fn read_cnn_state(r: &mut impl Read) -> io::Result<CnnModel> {
    let side = checked_dim(read_u64(r)?, "cnn side")?;
    let channels = checked_dim(read_u64(r)?, "cnn channels")?;
    let kernel = checked_dim(read_u64(r)?, "cnn kernel")?;
    let pool = checked_dim(read_u64(r)?, "cnn pool")?;
    let hidden = checked_dim(read_u64(r)?, "cnn hidden")?;
    let n_classes = checked_dim(read_u64(r)?, "cnn classes")?;
    // Mirror `CnnConfig::new`'s asserts as recoverable errors: the record
    // may be corrupt.
    if side < 2 || channels < 1 || hidden < 1 || n_classes < 2 {
        return Err(bad("degenerate CNN geometry"));
    }
    if kernel < 1 || kernel > side {
        return Err(bad(format!(
            "cnn kernel {kernel} out of range for side {side}"
        )));
    }
    if pool < 1 || (side - kernel + 1) % pool != 0 {
        return Err(bad(format!(
            "cnn conv output {} not divisible by pool {pool}",
            side - kernel + 1
        )));
    }
    let cfg = CnnConfig::new(side, channels, kernel, pool, hidden, n_classes);
    let weight_decay = read_f32(r)?;
    if !weight_decay.is_finite() {
        return Err(bad(format!("non-finite weight decay {weight_decay}")));
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let use_graph = match flag[0] {
        0 => false,
        1 => true,
        t => return Err(bad(format!("bad graph flag {t}"))),
    };
    let conv_w = read_mat(r, channels, kernel * kernel)?;
    let conv_b = read_vec(r, channels)?;
    let dense_w = read_mat(r, hidden, cfg.pooled_dim())?;
    let dense_b = read_vec(r, hidden)?;
    let sw = read_mat(r, n_classes, hidden)?;
    let sb = read_vec(r, n_classes)?;
    let cursor = read_u64(r)?;
    let cycle = read_u64(r)?;
    if cycle == 0 || cursor >= cycle {
        return Err(bad(format!(
            "label cursor {cursor} out of range for {cycle} rows"
        )));
    }
    let softmax = SoftmaxLayer { w: sw, b: sb };
    let net = CnnNet::from_parts(
        cfg,
        conv_w,
        conv_b,
        dense_w,
        dense_b,
        softmax,
        weight_decay,
        use_graph,
    );
    Ok(CnnModel::from_parts(net, cursor, cycle))
}

/// Writes a fine-tune checkpoint body: stack geometry, graph flag,
/// parameter tensors, and the label cursor.
pub(crate) fn write_ft_state(model: &FineTuneModel, w: &mut dyn Write) -> io::Result<()> {
    let mut w = w;
    write_header(&mut w, TAG_FT)?;
    let layers = model.net.layer_params();
    write_u64(&mut w, layers.len() as u64)?;
    write_u64(&mut w, model.net.in_dim() as u64)?;
    for (lw, _) in layers {
        write_u64(&mut w, lw.rows() as u64)?;
    }
    write_u64(&mut w, model.net.softmax.n_classes() as u64)?;
    write_f32(&mut w, model.net.weight_decay)?;
    w.write_all(&[model.net.uses_graph() as u8])?;
    for (lw, lb) in layers {
        write_mat(&mut w, lw)?;
        write_slice(&mut w, lb)?;
    }
    write_mat(&mut w, &model.net.softmax.w)?;
    write_slice(&mut w, &model.net.softmax.b)?;
    let (cursor, cycle) = model.cursor_parts();
    write_u64(&mut w, cursor)?;
    write_u64(&mut w, cycle)
}

fn read_ft_state(r: &mut impl Read) -> io::Result<FineTuneModel> {
    let n_layers = read_u64(r)?;
    if n_layers == 0 || n_layers > 1024 {
        return Err(bad(format!("fine-tune net with {n_layers} layers")));
    }
    let in_dim = checked_dim(read_u64(r)?, "fine-tune input dim")?;
    let mut widths = Vec::with_capacity(n_layers as usize);
    for i in 0..n_layers {
        widths.push(checked_dim(read_u64(r)?, &format!("fine-tune layer {i}"))?);
    }
    let n_classes = checked_dim(read_u64(r)?, "fine-tune classes")?;
    if n_classes < 2 {
        return Err(bad("fine-tune net needs at least two classes"));
    }
    let weight_decay = read_f32(r)?;
    if !weight_decay.is_finite() {
        return Err(bad(format!("non-finite weight decay {weight_decay}")));
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let use_graph = match flag[0] {
        0 => false,
        1 => true,
        t => return Err(bad(format!("bad graph flag {t}"))),
    };
    let mut layers = Vec::with_capacity(widths.len());
    let mut prev = in_dim;
    for &h in &widths {
        let lw = read_mat(r, h, prev)?;
        let lb = read_vec(r, h)?;
        layers.push((lw, lb));
        prev = h;
    }
    let sw = read_mat(r, n_classes, prev)?;
    let sb = read_vec(r, n_classes)?;
    let cursor = read_u64(r)?;
    let cycle = read_u64(r)?;
    if cycle == 0 || cursor >= cycle {
        return Err(bad(format!(
            "label cursor {cursor} out of range for {cycle} rows"
        )));
    }
    let softmax = SoftmaxLayer { w: sw, b: sb };
    let net = FineTuneNet::from_parts(layers, softmax, weight_decay, use_graph);
    Ok(FineTuneModel::from_parts(net, cursor, cycle))
}

// ---- whole-checkpoint save/load ----------------------------------------

/// Serializes a checkpoint record to `w`.
pub fn save_checkpoint(
    w: &mut impl Write,
    model: &dyn UnsupervisedModel,
    rng_seed: u64,
    rng_cursor: u64,
    progress: &TrainProgress,
) -> io::Result<()> {
    write_header(w, TAG_CKPT)?;
    write_u64(w, CHECKPOINT_VERSION)?;
    write_u64(w, rng_seed)?;
    write_u64(w, rng_cursor)?;
    write_u64(w, progress.layer)?;
    write_u64(w, progress.epoch)?;
    write_u64(w, progress.batches)?;
    write_u64(w, progress.examples)?;
    model.save_state(w)
}

/// Writes a checkpoint file atomically, creating the parent directory.
pub fn save_checkpoint_file(
    path: impl AsRef<Path>,
    model: &dyn UnsupervisedModel,
    rng_seed: u64,
    rng_cursor: u64,
    progress: &TrainProgress,
) -> io::Result<()> {
    if crate::faults::fire("ckpt.write") {
        return Err(io::Error::other("failpoint ckpt.write"));
    }
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    atomic_write(path, |mut w| {
        save_checkpoint(&mut w, model, rng_seed, rng_cursor, progress)
    })
}

/// Deserializes a checkpoint record.
pub fn load_checkpoint(r: &mut impl Read) -> io::Result<Checkpoint> {
    if crate::faults::fire("ckpt.read") {
        return Err(bad("failpoint ckpt.read: checkpoint unreadable"));
    }
    read_header(r, TAG_CKPT)?;
    let version = read_u64(r)?;
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!(
            "checkpoint version {version}, this build reads {CHECKPOINT_VERSION}"
        )));
    }
    let rng_seed = read_u64(r)?;
    let rng_cursor = read_u64(r)?;
    let progress = TrainProgress {
        layer: read_u64(r)?,
        epoch: read_u64(r)?,
        batches: read_u64(r)?,
        examples: read_u64(r)?,
    };
    let model = match read_any_header(r)? {
        TAG_AE => CheckpointModel::Ae(read_ae_state(r)?),
        TAG_RBM => CheckpointModel::Rbm(read_rbm_state(r)?),
        TAG_MDP => CheckpointModel::MultiDev(crate::multidev::read_multidev_body(r)?),
        TAG_CNN => CheckpointModel::Cnn(read_cnn_state(r)?),
        TAG_FT => CheckpointModel::FineTune(read_ft_state(r)?),
        t => return Err(bad(format!("checkpoint embeds unknown model tag {t}"))),
    };
    Ok(Checkpoint {
        rng_seed,
        rng_cursor,
        progress,
        model,
    })
}

/// Why a checkpoint file could not be loaded.
///
/// The interesting variant is [`CheckpointError::ShapeMismatch`]: a resume
/// against a model whose layer dims disagree with the on-disk tensors used
/// to surface as a bare `InvalidData` string from deep inside tensor I/O.
/// The loader now recovers the structured payload the tensor readers
/// attach, so callers learn *which* layer disagreed and by how much.
#[derive(Debug)]
pub enum CheckpointError {
    /// Any I/O or format failure other than a tensor shape disagreement.
    Io(io::Error),
    /// A named tensor's on-disk dims disagree with the record's header
    /// geometry (vectors are reported as `(len, 1)`).
    ShapeMismatch {
        /// Which tensor disagreed (`"w1"`, `"b_vis"`, ...).
        layer: String,
        /// `(rows, cols)` the header-derived geometry requires.
        expected: (usize, usize),
        /// `(rows, cols)` actually found on disk.
        found: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint: {e}"),
            CheckpointError::ShapeMismatch {
                layer,
                expected,
                found,
            } => write!(
                f,
                "checkpoint layer `{layer}`: shape {}x{} on disk, model expects {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::ShapeMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        // The tensor readers attach a structured `ShapeMismatch` payload to
        // InvalidData errors; lift it into the typed variant.
        if let Some(sm) = e
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<crate::model_io::ShapeMismatch>())
        {
            return CheckpointError::ShapeMismatch {
                layer: sm.layer.clone(),
                expected: sm.expected,
                found: sm.found,
            };
        }
        CheckpointError::Io(e)
    }
}

/// Loads a checkpoint file, classifying tensor-shape disagreements into
/// the typed [`CheckpointError::ShapeMismatch`] variant.
pub fn load_checkpoint_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    Ok(load_checkpoint(&mut r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AeConfig;
    use crate::rbm::{Rbm, RbmConfig};

    fn ae_model() -> AeModel {
        let cfg = AeConfig::new(8, 5);
        let slots = SparseAutoencoder::optimizer_slots(&cfg);
        let opt = Optimizer::new(
            Rule::Momentum { mu: 0.9 },
            Schedule::Exponential {
                base: 0.2,
                gamma: 0.999,
            },
            &slots,
        );
        AeModel::new(SparseAutoencoder::new(cfg, 3)).with_optimizer(opt)
    }

    #[test]
    fn ae_checkpoint_round_trips() {
        let model = ae_model();
        let progress = TrainProgress {
            layer: 2,
            epoch: 7,
            batches: 123,
            examples: 12300,
        };
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model, 42, 17, &progress).unwrap();
        let back = load_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(back.rng_seed, 42);
        assert_eq!(back.rng_cursor, 17);
        assert_eq!(back.progress, progress);
        let m = back.into_ae().expect("AE checkpoint");
        assert_eq!(m.ae.w1.as_slice(), model.ae.w1.as_slice());
        assert_eq!(m.ae.b2, model.ae.b2);
        let (a, b) = (m.optimizer().unwrap(), model.optimizer().unwrap());
        assert_eq!(a.rule(), b.rule());
        assert_eq!(a.schedule(), b.schedule());
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.state_slots(), b.state_slots());
    }

    #[test]
    fn rbm_checkpoint_round_trips_with_momentum() {
        let cfg = RbmConfig::new(6, 4);
        let model = RbmModel::new(Rbm::new(cfg, 9)).with_momentum(0.5);
        let progress = TrainProgress::default();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model, 1, 2, &progress).unwrap();
        let back = load_checkpoint(&mut buf.as_slice()).unwrap();
        let m = back.into_rbm().expect("RBM checkpoint");
        assert_eq!(m.rbm.w.as_slice(), model.rbm.w.as_slice());
        assert_eq!(m.momentum_parts(), model.momentum_parts());
        assert!(!m.uses_graph());
    }

    #[test]
    fn unknown_version_rejected() {
        let model = ae_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model, 0, 0, &TrainProgress::default()).unwrap();
        buf[9] = 99; // version byte (after 8-byte magic + tag)
        let err = load_checkpoint(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn shape_mismatch_is_typed_and_names_the_layer() {
        use micdnn_tensor::Mat;
        // A model whose w1 disagrees with its own header geometry (8x5
        // config, 3x3 tensor): the loader must classify this as a
        // ShapeMismatch naming the layer, not a generic I/O string.
        let mut model = ae_model();
        model.ae.w1 = Mat::zeros(3, 3);
        let mut path = std::env::temp_dir();
        path.push(format!("micdnn-ckpt-shape-{}.mic", std::process::id()));
        save_checkpoint_file(&path, &model, 0, 0, &TrainProgress::default()).unwrap();
        let err = load_checkpoint_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            CheckpointError::ShapeMismatch {
                layer,
                expected,
                found,
            } => {
                assert_eq!(layer, "w1");
                assert_eq!(expected, (5, 8));
                assert_eq!(found, (3, 3));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn model_file_is_not_a_checkpoint() {
        let model = ae_model();
        let mut buf = Vec::new();
        save_autoencoder(&model.ae, &mut buf).unwrap();
        let err = load_checkpoint(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
