//! Static safety verifier for the dataflow graph IR, plus the opt-in
//! dynamic race sanitizer (`race-check` feature) for the native executor.
//!
//! PR 3's executor rests on two analyses composing correctly: dependency
//! inference is done on *logical* buffers ([`TaskGraph::node`] derives
//! RAW/WAW/WAR edges from declared footprints) while workspace aliasing is
//! done on *physical* registers ([`TaskGraph::plan`] folds dead scratch
//! buffers into shared arena storage). The native path then shares one
//! `&mut S` across scoped threads through an `unsafe` pointer on the
//! strength of those analyses. Nothing in the executor itself re-checks
//! them — this module does.
//!
//! [`TaskGraph::verify`] recomputes full transitive reachability from the
//! *inferred edges* and checks it against the *declared footprints* and the
//! *workspace plan* — three independently produced artifacts that must
//! agree. It reports:
//!
//! * **errors** (schedules exist that compute garbage or diverge):
//!   unordered conflicting access to a logical buffer ([`DiagKind::Race`]);
//!   two buffers sharing a physical register while simultaneously live
//!   ([`DiagKind::UnsafeAlias`]); a read no topological order can have
//!   initialized ([`DiagKind::UseBeforeInit`]); stochastic nodes whose
//!   relative order — and therefore the sampling-stream assignment — is not
//!   fixed by the DAG ([`DiagKind::UnorderedStochastic`]); side-effecting
//!   (`exclusive`/`stochastic`) nodes that touch a common buffer without a
//!   fixed order ([`DiagKind::UnorderedSideEffects`]); side-effecting or
//!   opaque nodes marked eligible for concurrency waves
//!   ([`DiagKind::SideEffectInWave`]); and a buffer accessed from two
//!   different devices with no inter-device transfer node mediating the
//!   edge ([`DiagKind::CrossDeviceFlow`]).
//! * **warnings** (suspicious but schedule-safe): scratch writes nothing
//!   ever reads ([`DiagKind::DeadWrite`]), buffers declared but never
//!   touched ([`DiagKind::UnusedBuffer`]), and opaque [`TaskGraph::add`]
//!   nodes whose footprints the verifier cannot see
//!   ([`DiagKind::OpaqueNode`]).
//!
//! Executors call the verifier automatically: always in debug builds
//! (`cargo test` keeps `debug-assertions` on, so every shipped graph is
//! re-verified by the whole test suite) and behind
//! [`crate::ExecCtx::with_verify`] (CLI `--verify`) in release builds.
//! Errors panic with the full report; warnings never do.

use crate::graph::{BufClass, BufId, NodeId, TaskGraph, WorkspacePlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default per-device certification budget: the Xeon Phi card's 8 GB of
/// on-card GDDR5 (paper §III) — the constraint the whole training layout
/// is built around.
pub const DEFAULT_MEM_BUDGET: u64 = 8 << 30;

/// Schema identifier of the machine-readable certification report.
pub const VERIFY_SCHEMA: &str = "micdnn-verify-v1";

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The executor may compute garbage or diverge between schedules.
    Error,
    /// Schedule-safe, but the graph declares something it does not mean.
    Warning,
}

/// What a [`Diagnostic`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagKind {
    /// Two DAG-concurrent nodes conflict (read/write or write/write) on
    /// one logical buffer: a missing inferred edge.
    Race,
    /// Two buffers share a physical register but their accessor sets are
    /// not strictly DAG-ordered: a planner bug would corrupt live data.
    UnsafeAlias,
    /// A node reads a non-external buffer that no strictly-preceding node
    /// writes — some topological order reads uninitialized storage.
    UseBeforeInit,
    /// A scratch buffer is written but no later node reads the value and
    /// it is not an output (`Pinned`/`External` are outputs by class).
    DeadWrite,
    /// Two stochastic nodes have no dependency path between them, so the
    /// sampling-stream assignment depends on the schedule.
    UnorderedStochastic,
    /// Two side-effecting (`exclusive`/`stochastic`) nodes touch a common
    /// buffer without a fixed relative order.
    UnorderedSideEffects,
    /// A stochastic, exclusive or opaque node is marked eligible for
    /// native concurrency waves.
    SideEffectInWave,
    /// A buffer is accessed from two different devices without an
    /// inter-device transfer node ordering the cross-device edge — data
    /// would have to teleport between coprocessor memories.
    CrossDeviceFlow,
    /// A buffer is declared but never read or written.
    UnusedBuffer,
    /// An opaque node (explicit-dependency [`TaskGraph::add`]) declares no
    /// footprint; the verifier cannot prove anything about its accesses.
    OpaqueNode,
    /// A buffer's declared logical shape disagrees with its storage, or a
    /// node's shape claim disagrees with the producer's. Certify-only.
    ShapeMismatch,
    /// A buffer (or opaque node) escapes shape inference entirely: nothing
    /// declares or claims a logical shape for it. Certify-only.
    ShapeUnknown,
    /// A device's proven peak resident bytes exceed its modeled memory
    /// budget in some wave. Certify-only.
    MemBudget,
    /// A stochastic node does not trace to a declared counter-RNG cursor,
    /// so bit-identical resume/shard cannot be certified. Certify-only.
    UndeclaredStochastic,
}

impl DiagKind {
    /// Stable machine-readable code for the kind.
    pub fn code(self) -> &'static str {
        match self {
            DiagKind::Race => "race",
            DiagKind::UnsafeAlias => "unsafe-alias",
            DiagKind::UseBeforeInit => "use-before-init",
            DiagKind::DeadWrite => "dead-write",
            DiagKind::UnorderedStochastic => "unordered-stochastic",
            DiagKind::UnorderedSideEffects => "unordered-side-effects",
            DiagKind::SideEffectInWave => "side-effect-in-wave",
            DiagKind::CrossDeviceFlow => "cross-device-flow",
            DiagKind::UnusedBuffer => "unused-buffer",
            DiagKind::OpaqueNode => "opaque-node",
            DiagKind::ShapeMismatch => "shape-mismatch",
            DiagKind::ShapeUnknown => "shape-unknown",
            DiagKind::MemBudget => "mem-budget",
            DiagKind::UndeclaredStochastic => "undeclared-stochastic",
        }
    }

    /// The severity this kind always reports at.
    pub fn severity(self) -> Severity {
        match self {
            DiagKind::Race
            | DiagKind::UnsafeAlias
            | DiagKind::UseBeforeInit
            | DiagKind::UnorderedStochastic
            | DiagKind::UnorderedSideEffects
            | DiagKind::SideEffectInWave
            | DiagKind::CrossDeviceFlow
            | DiagKind::ShapeMismatch
            | DiagKind::ShapeUnknown
            | DiagKind::MemBudget
            | DiagKind::UndeclaredStochastic => Severity::Error,
            DiagKind::DeadWrite | DiagKind::UnusedBuffer | DiagKind::OpaqueNode => {
                Severity::Warning
            }
        }
    }
}

/// One verifier finding, locating the offending nodes and buffer.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// What went wrong.
    pub kind: DiagKind,
    /// The nodes involved, as `(id, label)` pairs.
    pub nodes: Vec<(NodeId, &'static str)>,
    /// The buffer involved, if the finding is about one.
    pub buffer: Option<&'static str>,
    /// The scheduling wave involved (certify-only, [`DiagKind::MemBudget`]).
    pub wave: Option<usize>,
    /// The byte count involved (certify-only, [`DiagKind::MemBudget`]).
    pub bytes: Option<u64>,
    /// Human-readable one-line description.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with no wave/byte detail (every non-certify finding).
    fn basic(
        kind: DiagKind,
        nodes: Vec<(NodeId, &'static str)>,
        buffer: Option<&'static str>,
        message: String,
    ) -> Self {
        Diagnostic {
            kind,
            nodes,
            buffer,
            wave: None,
            bytes: None,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}[{}]: {}", self.kind.code(), self.message)
    }
}

/// Structured result of [`TaskGraph::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Findings that make some legal schedule incorrect.
    pub errors: Vec<Diagnostic>,
    /// Schedule-safe but suspicious findings.
    pub warnings: Vec<Diagnostic>,
    /// Number of nodes checked.
    pub nodes: usize,
    /// Number of declared buffers checked.
    pub buffers: usize,
    /// Number of physical registers in the checked plan.
    pub registers: usize,
    /// Register-sharing buffer pairs whose accessor sets the verifier
    /// proved strictly ordered (the aliases that are *race-free*, not just
    /// space-saving).
    pub verified_alias_pairs: Vec<(&'static str, &'static str)>,
}

impl VerifyReport {
    /// `true` when there are neither errors nor warnings.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.warnings.is_empty()
    }

    /// Number of findings (errors + warnings) of one kind.
    pub fn count(&self, kind: DiagKind) -> usize {
        self.errors
            .iter()
            .chain(self.warnings.iter())
            .filter(|d| d.kind == kind)
            .count()
    }

    /// `true` when at least one finding of `kind` was reported.
    pub fn has(&self, kind: DiagKind) -> bool {
        self.count(kind) > 0
    }

    fn push(&mut self, diag: Diagnostic) {
        match diag.kind.severity() {
            Severity::Error => self.errors.push(diag),
            Severity::Warning => self.warnings.push(diag),
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify: {} nodes, {} buffers, {} registers — {} error(s), {} warning(s)",
            self.nodes,
            self.buffers,
            self.registers,
            self.errors.len(),
            self.warnings.len()
        )?;
        for d in self.errors.iter().chain(self.warnings.iter()) {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// `(node, label)` pair for diagnostics.
fn tag<S>(g: &TaskGraph<'_, S>, id: NodeId) -> (NodeId, &'static str) {
    (id, g.names[id])
}

impl<S> TaskGraph<'_, S> {
    /// Runs the static analysis against a freshly computed workspace plan.
    pub fn verify(&self) -> VerifyReport {
        self.verify_with_plan(&self.plan())
    }

    /// Runs the static analysis against a caller-supplied plan (the one
    /// the executor will actually bind storage with).
    pub fn verify_with_plan(&self, plan: &WorkspacePlan) -> VerifyReport {
        let n = self.len();
        let nb = self.bufs.len();
        let mut report = VerifyReport {
            nodes: n,
            buffers: nb,
            registers: plan.num_registers(),
            ..VerifyReport::default()
        };

        // Reachability is recomputed from the *inferred edges* here, then
        // compared against the *declared footprints*; a builder bug that
        // drops an edge makes the two disagree and surfaces as a finding.
        let anc = self.ancestors();
        let precedes = |a: NodeId, b: NodeId| -> bool { anc[b][a / 64] & (1 << (a % 64)) != 0 };
        let ordered = |a: NodeId, b: NodeId| precedes(a, b) || precedes(b, a);

        // Deduplicated reader/writer lists per buffer (a node appears in
        // both when it reads and writes the same buffer, e.g. in-place
        // updates).
        let mut readers: Vec<Vec<NodeId>> = vec![Vec::new(); nb];
        let mut writers: Vec<Vec<NodeId>> = vec![Vec::new(); nb];
        for id in 0..n {
            for &BufId(b) in &self.reads[id] {
                if !readers[b].contains(&id) {
                    readers[b].push(id);
                }
            }
            for &BufId(b) in &self.writes[id] {
                if !writers[b].contains(&id) {
                    writers[b].push(id);
                }
            }
        }

        // (1) Races on logical buffers: any unordered pair with at least
        // one write. Writer status wins when a node both reads and writes.
        for b in 0..nb {
            let mut touch: Vec<(NodeId, bool)> = writers[b].iter().map(|&w| (w, true)).collect();
            touch.extend(
                readers[b]
                    .iter()
                    .filter(|r| !writers[b].contains(r))
                    .map(|&r| (r, false)),
            );
            for i in 0..touch.len() {
                for j in (i + 1)..touch.len() {
                    let ((u, uw), (v, vw)) = (touch[i], touch[j]);
                    if (uw || vw) && !ordered(u, v) {
                        let mode = match (uw, vw) {
                            (true, true) => "write/write",
                            (true, false) => "write/read",
                            (false, true) => "read/write",
                            (false, false) => unreachable!("at least one write"),
                        };
                        report.push(Diagnostic {
                            kind: DiagKind::Race,
                            wave: None,
                            bytes: None,
                            nodes: vec![tag(self, u), tag(self, v)],
                            buffer: Some(self.bufs[b].name),
                            message: format!(
                                "nodes `{}` (#{u}) and `{}` (#{v}) access buffer `{}` \
                                 ({mode}) with no dependency path between them",
                                self.names[u], self.names[v], self.bufs[b].name
                            ),
                        });
                    }
                }
            }
        }

        // (2) Use-before-init: every read of a non-external buffer needs a
        // writer that strictly precedes it under *all* topological orders.
        for id in 0..n {
            for &BufId(b) in &self.reads[id] {
                if self.bufs[b].class == BufClass::External {
                    continue;
                }
                let initialized = writers[b].iter().any(|&w| w != id && precedes(w, id));
                if !initialized {
                    let why = if writers[b].iter().all(|&w| w == id) {
                        "no node writes it".to_string()
                    } else {
                        "no writer is ordered before the read".to_string()
                    };
                    report.push(Diagnostic {
                        kind: DiagKind::UseBeforeInit,
                        wave: None,
                        bytes: None,
                        nodes: vec![tag(self, id)],
                        buffer: Some(self.bufs[b].name),
                        message: format!(
                            "node `{}` (#{id}) reads buffer `{}` but {why}",
                            self.names[id], self.bufs[b].name
                        ),
                    });
                }
            }
        }

        // (3) Dead writes: scratch values nothing ever consumes. Pinned
        // and external buffers are outputs by class, so only Scratch
        // qualifies.
        for b in 0..nb {
            if self.bufs[b].class != BufClass::Scratch {
                continue;
            }
            for &w in &writers[b] {
                let consumed = readers[b].iter().any(|&r| r != w && precedes(w, r));
                if !consumed {
                    report.push(Diagnostic {
                        kind: DiagKind::DeadWrite,
                        wave: None,
                        bytes: None,
                        nodes: vec![tag(self, w)],
                        buffer: Some(self.bufs[b].name),
                        message: format!(
                            "node `{}` (#{w}) writes scratch buffer `{}` but no later \
                             node reads it",
                            self.names[w], self.bufs[b].name
                        ),
                    });
                }
            }
        }

        // Unused declarations (any class): probably a builder refactoring
        // leftover; for Pinned it also wastes a dedicated register.
        for (b, decl) in self.bufs.iter().enumerate() {
            if readers[b].is_empty() && writers[b].is_empty() {
                report.push(Diagnostic {
                    kind: DiagKind::UnusedBuffer,
                    wave: None,
                    bytes: None,
                    nodes: Vec::new(),
                    buffer: Some(decl.name),
                    message: format!(
                        "buffer `{}` ({:?}, {} elems) is declared but never accessed",
                        decl.name, decl.class, decl.elems
                    ),
                });
            }
        }

        // (4a) Stochastic nodes must be totally ordered among themselves:
        // each consumes the next sampling stream, so an unordered pair
        // makes the stream assignment — and therefore the results —
        // schedule-dependent even though neither node touches the other's
        // buffers.
        let stochastic: Vec<NodeId> = (0..n).filter(|&i| self.stochastic[i]).collect();
        for (i, &u) in stochastic.iter().enumerate() {
            for &v in &stochastic[i + 1..] {
                if !ordered(u, v) {
                    report.push(Diagnostic {
                        kind: DiagKind::UnorderedStochastic,
                        wave: None,
                        bytes: None,
                        nodes: vec![tag(self, u), tag(self, v)],
                        buffer: None,
                        message: format!(
                            "stochastic nodes `{}` (#{u}) and `{}` (#{v}) have no \
                             dependency path, so the sampling-stream order depends on \
                             the schedule",
                            self.names[u], self.names[v]
                        ),
                    });
                }
            }
        }

        // (4b) Side-effecting nodes (exclusive or stochastic) sharing any
        // buffer must have a fixed relative order: their hidden state
        // updates compose with the shared data in declaration order only.
        // (Pairs with a write conflict already carry an inferred edge;
        // this catches read-read sharing, which infers none.)
        let side: Vec<NodeId> = (0..n)
            .filter(|&i| self.stochastic[i] || self.exclusive[i])
            .collect();
        let touched: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut t: Vec<usize> = self.reads[i]
                    .iter()
                    .chain(self.writes[i].iter())
                    .map(|&BufId(b)| b)
                    .collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        for (i, &u) in side.iter().enumerate() {
            for &v in &side[i + 1..] {
                if self.stochastic[u] && self.stochastic[v] {
                    continue; // already fully covered by (4a)
                }
                let shared = touched[u].iter().find(|b| touched[v].contains(b));
                if let Some(&b) = shared {
                    if !ordered(u, v) {
                        report.push(Diagnostic {
                            kind: DiagKind::UnorderedSideEffects,
                            wave: None,
                            bytes: None,
                            nodes: vec![tag(self, u), tag(self, v)],
                            buffer: Some(self.bufs[b].name),
                            message: format!(
                                "side-effecting nodes `{}` (#{u}) and `{}` (#{v}) share \
                                 buffer `{}` but have no dependency path between them",
                                self.names[u], self.names[v], self.bufs[b].name
                            ),
                        });
                    }
                }
            }
        }

        // (4c) Consistency of the stored wave bit: side-effecting and
        // opaque nodes must never be wave-eligible.
        for i in 0..n {
            if self.wave_ok[i] && (self.stochastic[i] || self.exclusive[i] || self.opaque[i]) {
                let why = if self.stochastic[i] {
                    "stochastic"
                } else if self.exclusive[i] {
                    "exclusive"
                } else {
                    "opaque"
                };
                report.push(Diagnostic {
                    kind: DiagKind::SideEffectInWave,
                    wave: None,
                    bytes: None,
                    nodes: vec![tag(self, i)],
                    buffer: None,
                    message: format!(
                        "{why} node `{}` (#{i}) is marked eligible for concurrency waves",
                        self.names[i]
                    ),
                });
            }
        }

        // (4d) Cross-device flow: a buffer touched from two different
        // devices needs an inter-device transfer mediating the edge —
        // either one endpoint is itself the transfer node (and the pair is
        // ordered), or some transfer node lies strictly between them.
        // Device memories are disjoint; without a transfer the data would
        // have to teleport.
        if self.device.iter().any(|&d| d != 0) {
            let transfers: Vec<NodeId> = (0..n).filter(|&i| self.transfer[i]).collect();
            for b in 0..nb {
                let mut acc: Vec<NodeId> = writers[b].clone();
                for &r in &readers[b] {
                    if !acc.contains(&r) {
                        acc.push(r);
                    }
                }
                for i in 0..acc.len() {
                    for j in (i + 1)..acc.len() {
                        let (u, v) = (acc[i], acc[j]);
                        if self.device[u] == self.device[v] {
                            continue;
                        }
                        let endpoint_ok = (self.transfer[u] || self.transfer[v]) && ordered(u, v);
                        let mediated = transfers.iter().any(|&t| {
                            (precedes(u, t) && precedes(t, v)) || (precedes(v, t) && precedes(t, u))
                        });
                        if !(endpoint_ok || mediated) {
                            report.push(Diagnostic {
                                kind: DiagKind::CrossDeviceFlow,
                                wave: None,
                                bytes: None,
                                nodes: vec![tag(self, u), tag(self, v)],
                                buffer: Some(self.bufs[b].name),
                                message: format!(
                                    "nodes `{}` (#{u}, device {}) and `{}` (#{v}, \
                                     device {}) access buffer `{}` across devices with \
                                     no transfer node mediating the edge",
                                    self.names[u],
                                    self.device[u],
                                    self.names[v],
                                    self.device[v],
                                    self.bufs[b].name
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Opaque nodes: nothing above applies — say so once per node.
        for i in 0..n {
            if self.opaque[i] {
                report.push(Diagnostic {
                    kind: DiagKind::OpaqueNode,
                    wave: None,
                    bytes: None,
                    nodes: vec![tag(self, i)],
                    buffer: None,
                    message: format!(
                        "opaque node `{}` (#{i}) declares no footprint; its accesses \
                         cannot be verified",
                        self.names[i]
                    ),
                });
            }
        }

        // (5) Physical aliasing: re-derive the planner's own soundness
        // criterion per register-sharing pair. Every accessor of one buffer
        // must strictly precede every accessor of the other — the condition
        // under which no legal schedule has both live at once.
        let accessors = |b: usize| -> Vec<NodeId> {
            let mut a = writers[b].clone();
            for &r in &readers[b] {
                if !a.contains(&r) {
                    a.push(r);
                }
            }
            a
        };
        let all_before =
            |xs: &[NodeId], ys: &[NodeId]| xs.iter().all(|&u| ys.iter().all(|&v| precedes(u, v)));
        for r in 0..plan.num_registers() {
            let occupants: Vec<usize> =
                (0..nb).filter(|&b| plan.assignment[b] == Some(r)).collect();
            for i in 0..occupants.len() {
                for j in (i + 1)..occupants.len() {
                    let (a, b) = (occupants[i], occupants[j]);
                    let (aa, ab) = (accessors(a), accessors(b));
                    if all_before(&aa, &ab) || all_before(&ab, &aa) {
                        report
                            .verified_alias_pairs
                            .push((self.bufs[a].name, self.bufs[b].name));
                    } else {
                        report.push(Diagnostic {
                            kind: DiagKind::UnsafeAlias,
                            wave: None,
                            bytes: None,
                            nodes: Vec::new(),
                            buffer: Some(self.bufs[a].name),
                            message: format!(
                                "buffers `{}` and `{}` share register {r} but their \
                                 accessor sets are not strictly ordered — both can be \
                                 live at once",
                                self.bufs[a].name, self.bufs[b].name
                            ),
                        });
                    }
                }
            }
        }

        report
    }

    /// Runs the full certification pipeline against a freshly computed
    /// plan: the safety analyses of [`TaskGraph::verify`] plus shape
    /// inference, the per-device peak-memory proof against `budget_bytes`,
    /// and the determinism audit. Certification is strictly harder than
    /// verification — its three extra rules are errors here and never run
    /// on the executor's automatic verify path, so graphs built with the
    /// plain [`TaskGraph::declare`] API still execute.
    pub fn certify(&self, budget_bytes: u64) -> CertifyOutcome {
        self.certify_with_plan(&self.plan(), budget_bytes)
    }

    /// Runs the certification pipeline against a caller-supplied plan.
    pub fn certify_with_plan(&self, plan: &WorkspacePlan, budget_bytes: u64) -> CertifyOutcome {
        let mut report = self.verify_with_plan(plan);
        self.check_shapes(&mut report);
        self.check_determinism(&mut report);
        let (device_peaks, waves) = self.check_memory(plan, budget_bytes, &mut report);
        CertifyOutcome {
            report,
            device_peaks,
            waves,
            budget_bytes,
        }
    }

    /// Shape inference: joins declared dims ([`TaskGraph::declare_dims`])
    /// with per-node claims ([`crate::NodeSpec::shape`]) into one resolved
    /// shape per buffer, reporting [`DiagKind::ShapeMismatch`] on any
    /// disagreement (including dims whose product drifts from the declared
    /// element count) and [`DiagKind::ShapeUnknown`] for accessed buffers
    /// no declaration or claim covers — plus opaque nodes, which escape
    /// inference entirely.
    fn check_shapes(&self, report: &mut VerifyReport) {
        let nb = self.bufs.len();
        let mut resolved: Vec<Option<&[usize]>> =
            self.bufs.iter().map(|d| d.dims.as_deref()).collect();
        let fmt_dims = |dims: &[usize]| {
            let parts: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
            format!("[{}]", parts.join(" x "))
        };
        for decl in &self.bufs {
            if let Some(dims) = &decl.dims {
                let product: usize = dims.iter().product();
                if product != decl.elems {
                    report.push(Diagnostic::basic(
                        DiagKind::ShapeMismatch,
                        Vec::new(),
                        Some(decl.name),
                        format!(
                            "buffer `{}` declares shape {} ({product} elems) but carries \
                             {} elems of storage",
                            decl.name,
                            fmt_dims(dims),
                            decl.elems
                        ),
                    ));
                    // The declaration is still the best shape estimate;
                    // keeping it resolved avoids a cascading shape-unknown
                    // for the already-reported buffer.
                }
            }
        }
        for id in 0..self.len() {
            for (BufId(b), dims) in &self.shape_claims[id] {
                let decl = &self.bufs[*b];
                match resolved[*b] {
                    Some(have) if have != dims.as_slice() => {
                        report.push(Diagnostic::basic(
                            DiagKind::ShapeMismatch,
                            vec![tag(self, id)],
                            Some(decl.name),
                            format!(
                                "node `{}` (#{id}) claims shape {} for buffer `{}` but \
                                 its producer declares {}",
                                self.names[id],
                                fmt_dims(dims),
                                decl.name,
                                fmt_dims(have)
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        let product: usize = dims.iter().product();
                        if product != decl.elems {
                            report.push(Diagnostic::basic(
                                DiagKind::ShapeMismatch,
                                vec![tag(self, id)],
                                Some(decl.name),
                                format!(
                                    "node `{}` (#{id}) claims shape {} ({product} elems) \
                                     for buffer `{}` carrying {} elems of storage",
                                    self.names[id],
                                    fmt_dims(dims),
                                    decl.name,
                                    decl.elems
                                ),
                            ));
                        } else {
                            resolved[*b] = Some(dims.as_slice());
                        }
                    }
                }
            }
        }
        let mut first_accessor: Vec<Option<NodeId>> = vec![None; nb];
        for id in 0..self.len() {
            for &BufId(b) in self.reads[id].iter().chain(self.writes[id].iter()) {
                first_accessor[b].get_or_insert(id);
            }
        }
        for (b, decl) in self.bufs.iter().enumerate() {
            if let (None, Some(id)) = (resolved[b], first_accessor[b]) {
                report.push(Diagnostic::basic(
                    DiagKind::ShapeUnknown,
                    vec![tag(self, id)],
                    Some(decl.name),
                    format!(
                        "buffer `{}` is accessed (first by node `{}` (#{id})) but no \
                         declaration or claim gives it a shape",
                        decl.name, self.names[id]
                    ),
                ));
            }
        }
        for id in 0..self.len() {
            if self.opaque[id] {
                report.push(Diagnostic::basic(
                    DiagKind::ShapeUnknown,
                    vec![tag(self, id)],
                    None,
                    format!(
                        "opaque node `{}` (#{id}) escapes shape inference: its \
                         footprint is undeclared",
                        self.names[id]
                    ),
                ));
            }
        }
    }

    /// Determinism audit: every `.stochastic()` node must trace to a
    /// counter-RNG cursor declared on the graph — the static form of the
    /// executor's dynamic `undeclared-stochastic` lint, proving the
    /// sampling streams are replayable from declared state alone.
    fn check_determinism(&self, report: &mut VerifyReport) {
        for id in 0..self.len() {
            if !self.stochastic[id] {
                continue;
            }
            match self.cursors[id] {
                Some(c) if self.rng_cursors.contains(&c) => {}
                Some(c) => {
                    report.push(Diagnostic::basic(
                        DiagKind::UndeclaredStochastic,
                        vec![tag(self, id)],
                        None,
                        format!(
                            "stochastic node `{}` (#{id}) binds RNG cursor `{c}`, which \
                             the graph never declares (TaskGraph::declare_rng_cursor)",
                            self.names[id]
                        ),
                    ));
                }
                None => {
                    report.push(Diagnostic::basic(
                        DiagKind::UndeclaredStochastic,
                        vec![tag(self, id)],
                        None,
                        format!(
                            "stochastic node `{}` (#{id}) is not bound to a declared \
                             counter-RNG cursor (NodeSpec::cursor)",
                            self.names[id]
                        ),
                    ));
                }
            }
        }
    }

    /// Per-device peak-memory proof. Nodes are placed in ASAP waves
    /// (`wave = 1 + max(dep waves)`); a buffer is *live* from its first
    /// accessor's wave to its last's (Pinned outputs stay live to the final
    /// wave; External storage is resident for the whole run). A plan
    /// register occupies a device's memory exactly in the waves where one
    /// of its occupants with an accessor on that device is live, so per
    /// device the resident bytes of wave `t` are the sizes of its live
    /// registers plus its live external buffers. The per-device maximum
    /// over waves is the proven peak, checked against `budget_bytes` with
    /// [`DiagKind::MemBudget`] naming the violating wave and its live set.
    fn check_memory(
        &self,
        plan: &WorkspacePlan,
        budget_bytes: u64,
        report: &mut VerifyReport,
    ) -> (Vec<DevicePeak>, usize) {
        let n = self.len();
        let nb = self.bufs.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let mut wave = vec![0usize; n];
        for i in 0..n {
            wave[i] = self.deps[i].iter().map(|&d| wave[d] + 1).max().unwrap_or(0);
        }
        let waves = wave.iter().max().map(|&w| w + 1).unwrap_or(0);
        let last = waves - 1;
        let mut first_w = vec![usize::MAX; nb];
        let mut last_w = vec![0usize; nb];
        let mut on_dev: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (id, &w) in wave.iter().enumerate() {
            for &BufId(b) in self.reads[id].iter().chain(self.writes[id].iter()) {
                first_w[b] = first_w[b].min(w);
                last_w[b] = last_w[b].max(w);
                if !on_dev[b].contains(&self.device[id]) {
                    on_dev[b].push(self.device[id]);
                }
            }
        }
        // Live interval per buffer class (None for never-accessed buffers).
        let interval = |b: usize| -> Option<(usize, usize)> {
            if first_w[b] == usize::MAX {
                return None;
            }
            match self.bufs[b].class {
                BufClass::Scratch => Some((first_w[b], last_w[b])),
                BufClass::Pinned => Some((first_w[b], last)),
                BufClass::External => Some((0, last)),
            }
        };
        let bytes_of = |elems: usize| elems as u64 * std::mem::size_of::<f32>() as u64;
        let mut devices: Vec<u32> = self.device.clone();
        devices.sort_unstable();
        devices.dedup();
        let mut peaks = Vec::new();
        for &d in &devices {
            // Difference array over waves: +size where a storage unit
            // becomes resident, -size one past where it stops.
            let mut delta = vec![0i64; waves + 1];
            let mut charge = |s: usize, e: usize, bytes: u64| {
                delta[s] += bytes as i64;
                delta[e + 1] -= bytes as i64;
            };
            for (b, buf) in self.bufs.iter().enumerate() {
                if buf.class != BufClass::External || !on_dev[b].contains(&d) {
                    continue;
                }
                if let Some((s, e)) = interval(b) {
                    charge(s, e, bytes_of(buf.elems));
                }
            }
            for r in 0..plan.num_registers() {
                // Union (not convex hull) of the qualifying occupants'
                // intervals: a register with a liveness gap is reusable in
                // the gap, so it must not be charged there.
                let mut ivs: Vec<(usize, usize)> = (0..nb)
                    .filter(|&b| plan.assignment[b] == Some(r) && on_dev[b].contains(&d))
                    .filter_map(interval)
                    .collect();
                ivs.sort_unstable();
                let size = bytes_of(plan.register_elems[r]);
                let mut cur: Option<(usize, usize)> = None;
                for (s, e) in ivs {
                    match cur {
                        Some((cs, ce)) if s <= ce + 1 => cur = Some((cs, ce.max(e))),
                        Some((cs, ce)) => {
                            charge(cs, ce, size);
                            cur = Some((s, e));
                        }
                        None => cur = Some((s, e)),
                    }
                }
                if let Some((cs, ce)) = cur {
                    charge(cs, ce, size);
                }
            }
            let mut resident = 0i64;
            let mut peak = 0i64;
            let mut peak_wave = 0usize;
            for (t, dt) in delta.iter().take(waves).enumerate() {
                resident += dt;
                if resident > peak {
                    peak = resident;
                    peak_wave = t;
                }
            }
            let peak_bytes = peak as u64;
            if peak_bytes > budget_bytes {
                let live: Vec<&str> = (0..nb)
                    .filter(|&b| {
                        on_dev[b].contains(&d)
                            && interval(b).is_some_and(|(s, e)| s <= peak_wave && peak_wave <= e)
                    })
                    .map(|b| self.bufs[b].name)
                    .collect();
                report.push(Diagnostic {
                    kind: DiagKind::MemBudget,
                    nodes: Vec::new(),
                    buffer: None,
                    wave: Some(peak_wave),
                    bytes: Some(peak_bytes),
                    message: format!(
                        "device {d} peaks at {peak_bytes} resident bytes in wave \
                         {peak_wave}, exceeding the {budget_bytes}-byte budget; live \
                         set: {}",
                        live.iter()
                            .map(|n| format!("`{n}`"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
            peaks.push(DevicePeak {
                device: d,
                peak_bytes,
                peak_wave,
            });
        }
        (peaks, waves)
    }
}

/// Peak resident bytes proven for one device by the certification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevicePeak {
    /// Device id (0 for single-device graphs).
    pub device: u32,
    /// Maximum resident bytes over all waves.
    pub peak_bytes: u64,
    /// The wave attaining the maximum (earliest, on ties).
    pub peak_wave: usize,
}

/// Result of [`TaskGraph::certify`]: the extended report plus the
/// peak-memory proof artifacts.
#[derive(Debug, Clone)]
pub struct CertifyOutcome {
    /// Safety report extended with the certification rules.
    pub report: VerifyReport,
    /// Proven peak residency per device, in device order.
    pub device_peaks: Vec<DevicePeak>,
    /// Number of ASAP scheduling waves the proof ranged over.
    pub waves: usize,
    /// The budget each device was checked against.
    pub budget_bytes: u64,
}

impl CertifyOutcome {
    /// `true` when the extended report has neither errors nor warnings.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// Renders the outcome as one entry of the `micdnn-verify-v1` report.
    pub fn to_doc(&self, graph: &str) -> CertifyDoc {
        CertifyDoc {
            graph: graph.to_string(),
            devices: self.device_peaks.len() as u64,
            nodes: self.report.nodes as u64,
            buffers: self.report.buffers as u64,
            registers: self.report.registers as u64,
            waves: self.waves as u64,
            budget_bytes: self.budget_bytes,
            errors: self.report.errors.len() as u64,
            warnings: self.report.warnings.len() as u64,
            device_peaks: self
                .device_peaks
                .iter()
                .map(|p| DevicePeakDoc {
                    device: p.device as u64,
                    peak_bytes: p.peak_bytes,
                    peak_wave: p.peak_wave as u64,
                })
                .collect(),
            findings: self
                .report
                .errors
                .iter()
                .chain(self.report.warnings.iter())
                .map(FindingDoc::from_diag)
                .collect(),
        }
    }
}

/// One graph's entry in the `micdnn-verify-v1` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifyDoc {
    /// Label of the certified graph (e.g. `ae-step-1024x4096-b100`).
    pub graph: String,
    /// Number of distinct devices the graph places nodes on.
    pub devices: u64,
    /// Node count.
    pub nodes: u64,
    /// Declared-buffer count.
    pub buffers: u64,
    /// Physical-register count of the certified plan.
    pub registers: u64,
    /// ASAP wave count the memory proof ranged over.
    pub waves: u64,
    /// Per-device budget the proof was checked against.
    pub budget_bytes: u64,
    /// Error-finding count.
    pub errors: u64,
    /// Warning-finding count.
    pub warnings: u64,
    /// Proven peak residency per device.
    pub device_peaks: Vec<DevicePeakDoc>,
    /// All findings, errors first (SARIF-flavored).
    pub findings: Vec<FindingDoc>,
}

/// Per-device peak entry of a [`CertifyDoc`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePeakDoc {
    /// Device id.
    pub device: u64,
    /// Maximum resident bytes over all waves.
    pub peak_bytes: u64,
    /// The wave attaining the maximum.
    pub peak_wave: u64,
}

/// One finding of a [`CertifyDoc`] (SARIF-flavored: stable rule id plus
/// location data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindingDoc {
    /// Stable rule id ([`DiagKind::code`]).
    pub rule: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Human-readable one-line description.
    pub message: String,
    /// Involved nodes as `label#id`.
    pub nodes: Vec<String>,
    /// Involved buffer, if any.
    pub buffer: Option<String>,
    /// Involved wave, if any (mem-budget findings).
    pub wave: Option<u64>,
    /// Involved byte count, if any (mem-budget findings).
    pub bytes: Option<u64>,
}

impl FindingDoc {
    fn from_diag(d: &Diagnostic) -> Self {
        FindingDoc {
            rule: d.kind.code().to_string(),
            severity: match d.kind.severity() {
                Severity::Error => "error".to_string(),
                Severity::Warning => "warning".to_string(),
            },
            message: d.message.clone(),
            nodes: d
                .nodes
                .iter()
                .map(|(id, name)| format!("{name}#{id}"))
                .collect(),
            buffer: d.buffer.map(str::to_string),
            wave: d.wave.map(|w| w as u64),
            bytes: d.bytes,
        }
    }
}

/// The versioned `micdnn-verify-v1` report: one entry per certified graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifyBundle {
    /// Always [`VERIFY_SCHEMA`].
    pub schema: String,
    /// One entry per certified graph, in certification order.
    pub graphs: Vec<CertifyDoc>,
}

impl CertifyBundle {
    /// Wraps per-graph entries under the versioned schema tag.
    pub fn new(graphs: Vec<CertifyDoc>) -> Self {
        CertifyBundle {
            schema: VERIFY_SCHEMA.to_string(),
            graphs,
        }
    }

    /// `true` when every entry certified with zero errors and warnings.
    pub fn is_clean(&self) -> bool {
        self.graphs.iter().all(|g| g.errors == 0 && g.warnings == 0)
    }
}

/// Dynamic race sanitizer for the native concurrent path (`race-check`
/// feature): one atomic claim word per physical register (plus one per
/// external buffer), acquired around every node execution inside
/// `run_native_waves`. A word holds either one writer (node id + 1, upper
/// half) or a count of readers (lower half); any overlap the static
/// verifier's model would forbid — write/write or read/write on one
/// register — trips a panic with a readable diagnostic naming both
/// parties. The panic unwinds through the rayon shim's scoped threads with
/// its payload intact.
#[cfg(feature = "race-check")]
pub(crate) struct RaceTracker {
    slots: Vec<std::sync::atomic::AtomicU64>,
    slot_names: Vec<String>,
    node_names: Vec<&'static str>,
    /// Per node: slots read (excluding ones it also writes).
    reads: Vec<Vec<usize>>,
    /// Per node: slots written.
    writes: Vec<Vec<usize>>,
}

#[cfg(feature = "race-check")]
impl RaceTracker {
    /// Builds the tracker from the graph's footprints and the plan's
    /// buffer-to-register assignment (externals get virtual slots).
    pub(crate) fn new<S>(g: &TaskGraph<'_, S>, plan: &WorkspacePlan) -> Self {
        use std::sync::atomic::AtomicU64;
        let nb = g.bufs.len();
        let nr = plan.num_registers();
        // Slot per register, then one per external buffer.
        let mut slot_of: Vec<usize> = vec![usize::MAX; nb];
        let mut slot_names: Vec<String> = (0..nr).map(|r| format!("register {r}")).collect();
        for (b, assigned) in plan.assignment.iter().enumerate().take(nb) {
            match *assigned {
                Some(r) => {
                    slot_of[b] = r;
                    slot_names[r].push_str(&format!(" `{}`", g.bufs[b].name));
                }
                None => {
                    slot_of[b] = slot_names.len();
                    slot_names.push(format!("external buffer `{}`", g.bufs[b].name));
                }
            }
        }
        let n = g.len();
        let mut reads: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut writes: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut w: Vec<usize> = g.writes[i].iter().map(|&BufId(b)| slot_of[b]).collect();
            w.sort_unstable();
            w.dedup();
            let mut r: Vec<usize> = g.reads[i]
                .iter()
                .map(|&BufId(b)| slot_of[b])
                .filter(|s| !w.contains(s))
                .collect();
            r.sort_unstable();
            r.dedup();
            reads.push(r);
            writes.push(w);
        }
        RaceTracker {
            slots: (0..slot_names.len()).map(|_| AtomicU64::new(0)).collect(),
            slot_names,
            node_names: g.names.clone(),
            reads,
            writes,
        }
    }

    /// Claims the node's registers, panicking on any overlap; the claims
    /// release when the returned guard drops.
    pub(crate) fn enter(&self, node: NodeId) -> RaceClaim<'_> {
        use std::sync::atomic::Ordering;
        for &s in &self.writes[node] {
            let claim = ((node as u64) + 1) << 32;
            if let Err(cur) =
                self.slots[s].compare_exchange(0, claim, Ordering::AcqRel, Ordering::Acquire)
            {
                self.conflict(node, s, cur, "write");
            }
        }
        for &s in &self.reads[node] {
            let res = self.slots[s].fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                if cur >> 32 != 0 {
                    None
                } else {
                    Some(cur + 1)
                }
            });
            if let Err(cur) = res {
                self.conflict(node, s, cur, "read");
            }
        }
        RaceClaim {
            tracker: self,
            node,
        }
    }

    fn conflict(&self, node: NodeId, slot: usize, cur: u64, mode: &str) -> ! {
        let holder = if cur >> 32 != 0 {
            let owner = (cur >> 32) as usize - 1;
            format!(
                "node `{}` (#{owner}) holds a write claim",
                self.node_names[owner]
            )
        } else {
            format!("{} read claim(s) are outstanding", cur & 0xFFFF_FFFF)
        };
        panic!(
            "race-check: node `{}` (#{node}) began a concurrent {mode} of {} while {holder}",
            self.node_names[node], self.slot_names[slot]
        );
    }
}

/// RAII claim over one node's registers; releases on drop (including
/// during unwinding, so a panicking node does not wedge the tracker).
#[cfg(feature = "race-check")]
pub(crate) struct RaceClaim<'t> {
    tracker: &'t RaceTracker,
    node: NodeId,
}

#[cfg(feature = "race-check")]
impl Drop for RaceClaim<'_> {
    fn drop(&mut self) {
        use std::sync::atomic::Ordering;
        for &s in &self.tracker.writes[self.node] {
            self.tracker.slots[s].store(0, Ordering::Release);
        }
        for &s in &self.tracker.reads[self.node] {
            self.tracker.slots[s].fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeSpec;

    /// produce -> consume over one scratch buffer, plus an output sink so
    /// nothing is a dead write.
    fn chain() -> TaskGraph<'static, ()> {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 32, BufClass::Scratch);
        let out = g.declare("out", 32, BufClass::Pinned);
        g.node(NodeSpec::new("produce").writes(&[x]), |_, _| {});
        g.node(
            NodeSpec::new("consume").reads(&[x]).writes(&[out]),
            |_, _| {},
        );
        g
    }

    #[test]
    fn clean_chain_verifies_clean() {
        let report = chain().verify();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.nodes, 2);
        assert_eq!(report.buffers, 2);
    }

    #[test]
    fn dropped_edge_is_a_race() {
        let mut g = chain();
        g.testonly_drop_dep(1, 0);
        let report = g.verify();
        assert!(report.has(DiagKind::Race), "{report}");
        // The missing edge also leaves the read uninitialized in some
        // topological order.
        assert!(report.has(DiagKind::UseBeforeInit), "{report}");
        let race = &report.errors[0];
        assert_eq!(race.buffer, Some("x"));
        assert!(race.message.contains("produce") && race.message.contains("consume"));
    }

    #[test]
    fn missing_writer_is_use_before_init() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 16, BufClass::Scratch);
        let out = g.declare("out", 16, BufClass::Pinned);
        // The init node was "skipped": nothing writes x.
        g.node(
            NodeSpec::new("consume").reads(&[x]).writes(&[out]),
            |_, _| {},
        );
        let report = g.verify();
        assert!(report.has(DiagKind::UseBeforeInit), "{report}");
        assert!(report.errors[0].message.contains("no node writes it"));
    }

    #[test]
    fn unread_scratch_write_is_dead() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 16, BufClass::Scratch);
        g.node(NodeSpec::new("produce").writes(&[x]), |_, _| {});
        let report = g.verify();
        assert!(report.errors.is_empty(), "{report}");
        assert!(report.has(DiagKind::DeadWrite), "{report}");
    }

    #[test]
    fn pinned_outputs_are_not_dead_writes() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 16, BufClass::Pinned);
        g.node(NodeSpec::new("produce").writes(&[x]), |_, _| {});
        let report = g.verify();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn undeclared_unused_buffer_warns() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let _unused = g.declare("leftover", 64, BufClass::Pinned);
        let x = g.declare("x", 16, BufClass::Pinned);
        g.node(NodeSpec::new("produce").writes(&[x]), |_, _| {});
        let report = g.verify();
        assert!(report.has(DiagKind::UnusedBuffer), "{report}");
        assert!(report.errors.is_empty());
    }

    #[test]
    fn unordered_stochastic_pair_is_an_error() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.declare("a", 16, BufClass::Pinned);
        let b = g.declare("b", 16, BufClass::Pinned);
        g.node(
            NodeSpec::new("sampleA").writes(&[a]).stochastic(),
            |_, _| {},
        );
        g.node(
            NodeSpec::new("sampleB").writes(&[b]).stochastic(),
            |_, _| {},
        );
        let report = g.verify();
        assert!(report.has(DiagKind::UnorderedStochastic), "{report}");
    }

    #[test]
    fn ordered_stochastic_chain_is_fine() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.declare("a", 16, BufClass::Pinned);
        let b = g.declare("b", 16, BufClass::Pinned);
        g.node(
            NodeSpec::new("sampleA").writes(&[a]).stochastic(),
            |_, _| {},
        );
        g.node(
            NodeSpec::new("sampleB")
                .reads(&[a])
                .writes(&[b])
                .stochastic(),
            |_, _| {},
        );
        let report = g.verify();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn exclusive_read_read_sharing_without_order_is_an_error() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let src = g.declare("src", 16, BufClass::External);
        // Two exclusive nodes both read `src`, no path between them.
        g.node(NodeSpec::new("statA").reads(&[src]).exclusive(), |_, _| {});
        g.node(NodeSpec::new("statB").reads(&[src]).exclusive(), |_, _| {});
        let report = g.verify();
        assert!(report.has(DiagKind::UnorderedSideEffects), "{report}");
    }

    #[test]
    fn disjoint_exclusive_nodes_are_fine() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.declare("a", 16, BufClass::External);
        let b = g.declare("b", 16, BufClass::External);
        g.node(NodeSpec::new("statA").reads(&[a]).exclusive(), |_, _| {});
        g.node(NodeSpec::new("statB").reads(&[b]).exclusive(), |_, _| {});
        let report = g.verify();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn forced_wave_bit_on_stochastic_node_is_caught() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.declare("a", 16, BufClass::Pinned);
        let s = g.node(NodeSpec::new("sample").writes(&[a]).stochastic(), |_, _| {});
        g.testonly_force_wave_ok(s);
        let report = g.verify();
        assert!(report.has(DiagKind::SideEffectInWave), "{report}");
    }

    #[test]
    fn forced_alias_of_live_buffers_is_unsafe() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.declare("a", 32, BufClass::Scratch);
        let b = g.declare("b", 32, BufClass::Scratch);
        let out = g.declare("out", 32, BufClass::Pinned);
        g.node(NodeSpec::new("mkA").writes(&[a]), |_, _| {});
        g.node(NodeSpec::new("mkB").writes(&[b]), |_, _| {});
        g.node(
            NodeSpec::new("sum").reads(&[a, b]).writes(&[out]),
            |_, _| {},
        );
        let mut plan = g.plan();
        assert_ne!(plan.register_of(a), plan.register_of(b), "live pair");
        plan.testonly_force_alias(a, b);
        let report = g.verify_with_plan(&plan);
        assert!(report.has(DiagKind::UnsafeAlias), "{report}");
        // The honest plan verifies clean.
        let clean = g.verify();
        assert!(clean.errors.is_empty(), "{clean}");
    }

    #[test]
    fn legal_alias_is_reported_as_verified() {
        // a dies before c is born (the planner-alias unit-test shape).
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.declare("a", 100, BufClass::Scratch);
        let t = g.declare("t", 4, BufClass::Pinned);
        let c = g.declare("c", 40, BufClass::Scratch);
        let out = g.declare("out", 4, BufClass::Pinned);
        g.node(NodeSpec::new("first").writes(&[a]), |_, _| {});
        g.node(NodeSpec::new("mid").reads(&[a]).writes(&[t]), |_, _| {});
        g.node(NodeSpec::new("late").reads(&[t]).writes(&[c]), |_, _| {});
        g.node(NodeSpec::new("sink").reads(&[c]).writes(&[out]), |_, _| {});
        let plan = g.plan();
        assert_eq!(plan.register_of(a), plan.register_of(c));
        let report = g.verify_with_plan(&plan);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.verified_alias_pairs, vec![("a", "c")]);
    }

    #[test]
    fn opaque_nodes_warn_only() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let a = g.add("first", &[], |_, _| {});
        g.add("second", &[a], |_, _| {});
        let report = g.verify();
        assert!(report.errors.is_empty(), "{report}");
        assert_eq!(report.count(DiagKind::OpaqueNode), 2);
    }

    #[test]
    fn unmediated_cross_device_edge_is_an_error() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 16, BufClass::Scratch);
        let out = g.declare("out", 16, BufClass::Pinned);
        g.node(NodeSpec::new("produce").writes(&[x]).device(0), |_, _| {});
        g.node(
            NodeSpec::new("consume")
                .reads(&[x])
                .writes(&[out])
                .device(1),
            |_, _| {},
        );
        let report = g.verify();
        assert!(report.has(DiagKind::CrossDeviceFlow), "{report}");
        let diag = report
            .errors
            .iter()
            .find(|d| d.kind == DiagKind::CrossDeviceFlow)
            .unwrap();
        assert_eq!(diag.buffer, Some("x"));
        assert!(diag.message.contains("device 0") && diag.message.contains("device 1"));
    }

    #[test]
    fn transfer_endpoint_mediates_the_edge() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 16, BufClass::Scratch);
        let y = g.declare("y", 16, BufClass::Scratch);
        let out = g.declare("out", 16, BufClass::Pinned);
        g.node(NodeSpec::new("produce").writes(&[x]).device(0), |_, _| {});
        g.node(
            NodeSpec::new("ship")
                .reads(&[x])
                .writes(&[y])
                .device(1)
                .transfer(),
            |_, _| {},
        );
        g.node(
            NodeSpec::new("consume")
                .reads(&[y])
                .writes(&[out])
                .device(1),
            |_, _| {},
        );
        let report = g.verify();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn interposed_transfer_mediates_a_staged_edge() {
        // produce@0 and consume@1 share `x` directly, but a transfer node
        // sits strictly between them on the token chain: the edge is
        // mediated even though the transfer stages through another buffer.
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 16, BufClass::Scratch);
        let tok = g.declare("tok", 1, BufClass::Scratch);
        let tok2 = g.declare("tok2", 1, BufClass::Scratch);
        let out = g.declare("out", 16, BufClass::Pinned);
        g.node(
            NodeSpec::new("produce").writes(&[x, tok]).device(0),
            |_, _| {},
        );
        g.node(
            NodeSpec::new("stage")
                .reads(&[tok])
                .writes(&[tok2])
                .device(1)
                .transfer(),
            |_, _| {},
        );
        g.node(
            NodeSpec::new("consume")
                .reads(&[x, tok2])
                .writes(&[out])
                .device(1),
            |_, _| {},
        );
        let report = g.verify();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn single_device_graphs_skip_the_cross_device_check() {
        // The default device is 0 everywhere; nothing cross-device fires.
        let report = chain().verify();
        assert!(!report.has(DiagKind::CrossDeviceFlow), "{report}");
    }

    #[test]
    fn report_renders_counts_and_lines() {
        let mut g = chain();
        g.testonly_drop_dep(1, 0);
        let text = g.verify().to_string();
        assert!(text.contains("error(s)"), "{text}");
        assert!(text.contains("error[race]"), "{text}");
        assert!(text.contains("`x`"), "{text}");
    }

    /// Shaped produce -> consume chain with a stochastic, cursor-bound tail.
    fn shaped_chain() -> TaskGraph<'static, ()> {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        g.declare_rng_cursor("noise");
        let x = g.declare_dims("x", &[4, 8], BufClass::Scratch);
        let out = g.declare_dims("out", &[4, 8], BufClass::Pinned);
        g.node(NodeSpec::new("produce").writes(&[x]), |_, _| {});
        g.node(
            NodeSpec::new("consume")
                .reads(&[x])
                .writes(&[out])
                .shape(out, &[4, 8])
                .stochastic()
                .cursor("noise"),
            |_, _| {},
        );
        g
    }

    #[test]
    fn shaped_chain_certifies_clean() {
        let g = shaped_chain();
        let outcome = g.certify(DEFAULT_MEM_BUDGET);
        assert!(outcome.is_clean(), "{}", outcome.report);
        assert_eq!(outcome.waves, 2);
        assert_eq!(outcome.device_peaks.len(), 1);
        // x (32 elems) and out (32 elems) both resident in the peak wave.
        assert_eq!(outcome.device_peaks[0].peak_bytes, 2 * 32 * 4);
    }

    #[test]
    fn certify_rules_stay_out_of_the_verify_path() {
        // Plain declare() + stochastic-without-cursor: certification has
        // findings, but the executor's automatic verify path stays clean —
        // existing graphs must keep executing.
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let out = g.declare("out", 16, BufClass::Pinned);
        g.node(
            NodeSpec::new("sample").writes(&[out]).stochastic(),
            |_, _| {},
        );
        let verify = g.verify();
        assert!(verify.is_clean(), "{verify}");
        let certify = g.certify(DEFAULT_MEM_BUDGET);
        assert!(
            certify.report.has(DiagKind::ShapeUnknown),
            "{}",
            certify.report
        );
        assert!(
            certify.report.has(DiagKind::UndeclaredStochastic),
            "{}",
            certify.report
        );
    }

    #[test]
    fn conflicting_shape_claim_is_a_mismatch() {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare_dims("x", &[4, 8], BufClass::Pinned);
        g.node(
            NodeSpec::new("produce").writes(&[x]).shape(x, &[8, 4]),
            |_, _| {},
        );
        let outcome = g.certify(DEFAULT_MEM_BUDGET);
        assert!(
            outcome.report.has(DiagKind::ShapeMismatch),
            "{}",
            outcome.report
        );
        let diag = &outcome.report.errors[0];
        assert_eq!(diag.buffer, Some("x"));
        assert!(diag.message.contains("[8 x 4]") && diag.message.contains("[4 x 8]"));
    }

    #[test]
    fn mem_budget_violation_names_the_peak_wave_and_live_set() {
        let g = shaped_chain();
        let peak = g.certify(DEFAULT_MEM_BUDGET).device_peaks[0].clone();
        let outcome = g.certify(peak.peak_bytes - 1);
        assert!(
            outcome.report.has(DiagKind::MemBudget),
            "{}",
            outcome.report
        );
        let diag = outcome
            .report
            .errors
            .iter()
            .find(|d| d.kind == DiagKind::MemBudget)
            .unwrap();
        assert_eq!(diag.wave, Some(peak.peak_wave));
        assert_eq!(diag.bytes, Some(peak.peak_bytes));
        assert!(diag.message.contains("`x`") && diag.message.contains("`out`"));
    }

    #[test]
    fn certify_doc_round_trips_through_the_shim() {
        let g = shaped_chain();
        let doc = g.certify(DEFAULT_MEM_BUDGET).to_doc("shaped-chain");
        let bundle = CertifyBundle::new(vec![doc]);
        assert!(bundle.is_clean());
        let json = serde_json::to_string(&bundle).unwrap();
        let back: CertifyBundle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bundle);
        assert_eq!(back.schema, VERIFY_SCHEMA);
    }
}
