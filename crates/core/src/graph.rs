//! The dataflow execution substrate: graph builder, workspace planner and
//! executor (paper §IV.B.1, Fig. 6).
//!
//! The paper's fourth optimization observes that the matrix operations of
//! one training step form a small DAG: once `H1` is known, the
//! reconstruction `V2` and the positive statistics can proceed
//! concurrently, and the final parameter updates are mutually independent.
//! [`TaskGraph`] turns that observation into the single execution substrate
//! for every training step in this crate:
//!
//! * **Builder** — nodes declare the buffers they read and write
//!   ([`TaskGraph::declare`], [`NodeSpec`], [`TaskGraph::node`]);
//!   dependencies are derived automatically from read-after-write,
//!   write-after-write and write-after-read conflicts, so the declaration
//!   order is by construction a valid serial schedule. (The original
//!   explicit-dependency API, [`TaskGraph::add`], remains for *opaque*
//!   nodes whose footprints are not declared; those always run serially.)
//! * **Planner** — [`TaskGraph::plan`] computes buffer liveness over the
//!   DAG and aliases scratch buffers whose accessor sets are strictly
//!   ordered into shared *registers* of a [`Workspace`] arena. Two buffers
//!   may share storage only when every node touching one strictly precedes
//!   every node touching the other — a criterion that stays safe under any
//!   schedule the executor is allowed to pick, serial or concurrent.
//! * **Executor** — [`TaskGraph::run_serial`] runs nodes in declaration
//!   order, charging ops directly: bit- and time-identical to the
//!   hand-rolled loops it replaces. [`TaskGraph::execute`] prices each node
//!   separately on a simulated context and advances the clock by the
//!   *critical path*; on a native context it runs *waves* of independent
//!   sub-saturating nodes concurrently over the rayon pool via scoped
//!   threads — the one regime where node-level threading beats intra-op
//!   threading, because small kernels cannot fill the cores on their own.
//!
//! Concurrency never touches stochastic nodes (sampling-stream order is
//! part of the reproducibility contract) and is disabled while the op
//! recorder is on, so recorded streams stay in declaration order.
//!
//! Before either executor touches a graph, the static verifier in
//! [`crate::verify`] checks the declared footprints, the inferred edges and
//! the workspace plan against each other (races, use-before-init, unsafe
//! aliases, determinism hazards). It runs on every execution in debug
//! builds and behind [`ExecCtx::verify_enabled`] in release builds; the
//! `race-check` cargo feature additionally arms a dynamic per-register
//! sanitizer around the native concurrency waves.

use crate::exec::{ExecCtx, PhaseGuard};
use micdnn_sim::EventKind;
use std::cell::Cell;

/// Identifier of a node within a [`TaskGraph`].
pub type NodeId = usize;

thread_local! {
    /// The graph node executing on this thread, as `(name, may_sample)`.
    /// `may_sample` is true for nodes declared `.stochastic()` and for
    /// opaque nodes (which declare nothing the lint could check).
    static CURRENT_NODE: Cell<Option<(&'static str, bool)>> = const { Cell::new(None) };
}

/// The name of the currently-executing graph node if it draws from the
/// sampling stream without a declared `.stochastic()` flag; `None` outside
/// node bodies and inside properly-declared ones. Consulted by
/// [`ExecCtx::next_stream`].
pub(crate) fn undeclared_stochastic_node() -> Option<&'static str> {
    CURRENT_NODE.with(|c| match c.get() {
        Some((name, false)) => Some(name),
        _ => None,
    })
}

/// RAII marker scoping [`CURRENT_NODE`] to one task invocation
/// (nest-safe: restores the previous value on drop).
struct NodeGuard {
    prev: Option<(&'static str, bool)>,
}

impl NodeGuard {
    fn enter(name: &'static str, may_sample: bool) -> Self {
        NodeGuard {
            prev: CURRENT_NODE.with(|c| c.replace(Some((name, may_sample)))),
        }
    }
}

impl Drop for NodeGuard {
    fn drop(&mut self) {
        CURRENT_NODE.with(|c| c.set(self.prev));
    }
}

/// Identifier of a declared buffer within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// Storage class of a declared buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufClass {
    /// Arena-managed scratch, dead after its last reader; the planner may
    /// alias it with other scratch whose live ranges are disjoint.
    Scratch,
    /// Arena-managed but read after the run (statistics consumed by a
    /// momentum update, gradients consumed by an optimizer); never aliased.
    Pinned,
    /// Storage owned elsewhere (model parameters, the input batch): tracked
    /// for dependency analysis only, no arena space.
    External,
}

/// One declared buffer.
#[derive(Debug, Clone)]
pub(crate) struct BufDecl {
    pub(crate) name: &'static str,
    pub(crate) elems: usize,
    pub(crate) class: BufClass,
    /// Logical tensor shape, when declared through
    /// [`TaskGraph::declare_dims`]; `None` leaves the buffer opaque to the
    /// certifier's shape inference ([`TaskGraph::certify`]).
    pub(crate) dims: Option<Vec<usize>>,
}

/// Declarative description of a graph node, consumed by
/// [`TaskGraph::node`].
#[derive(Debug, Clone)]
pub struct NodeSpec {
    name: &'static str,
    reads: Vec<BufId>,
    writes: Vec<BufId>,
    stochastic: bool,
    exclusive: bool,
    phase: Option<&'static str>,
    device: u32,
    transfer: bool,
    cursor: Option<&'static str>,
    shapes: Vec<(BufId, Vec<usize>)>,
}

impl NodeSpec {
    /// A node with no declared accesses yet.
    pub fn new(name: &'static str) -> Self {
        NodeSpec {
            name,
            reads: Vec::new(),
            writes: Vec::new(),
            stochastic: false,
            exclusive: false,
            phase: None,
            device: 0,
            transfer: false,
            cursor: None,
            shapes: Vec::new(),
        }
    }

    /// Declares buffers this node reads.
    pub fn reads(mut self, bufs: &[BufId]) -> Self {
        self.reads.extend_from_slice(bufs);
        self
    }

    /// Declares buffers this node writes.
    pub fn writes(mut self, bufs: &[BufId]) -> Self {
        self.writes.extend_from_slice(bufs);
        self
    }

    /// Marks the node as drawing from the context's sampling streams.
    /// Stochastic nodes always run serially, in declaration order — stream
    /// order is part of the bit-reproducibility contract.
    pub fn stochastic(mut self) -> Self {
        self.stochastic = true;
        self
    }

    /// Excludes the node from concurrency waves even when its kernels are
    /// sub-saturating (nodes that mutate shared non-buffer state, e.g. an
    /// optimizer's schedule step).
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Tags the node with a profiling phase; [`TaskGraph::run_serial`]
    /// opens one [`crate::PhaseGuard`] per maximal run of equal tags,
    /// reproducing the hand-rolled loops' span structure.
    pub fn phase(mut self, name: &'static str) -> Self {
        self.phase = Some(name);
        self
    }

    /// Places the node on device `d` of a multi-device schedule (device 0
    /// by default). The verifier requires cross-device dataflow to be
    /// mediated by an ordered [`NodeSpec::transfer`] node.
    pub fn device(mut self, d: u32) -> Self {
        self.device = d;
        self
    }

    /// Marks the node as an inter-device transfer: it may legally bridge
    /// buffers between two devices (it owns the link hop that moves the
    /// bytes), and the verifier treats it as the ordering point of that
    /// cross-device edge.
    pub fn transfer(mut self) -> Self {
        self.transfer = true;
        self
    }

    /// Binds a stochastic node to a named counter-RNG cursor declared via
    /// [`TaskGraph::declare_rng_cursor`]. Pure metadata for the certifier's
    /// determinism audit ([`TaskGraph::certify`]): execution is unchanged,
    /// but certification requires every `.stochastic()` node to trace to a
    /// declared cursor.
    pub fn cursor(mut self, name: &'static str) -> Self {
        self.cursor = Some(name);
        self
    }

    /// Claims the logical shape this node reads or writes `buf` with. Pure
    /// metadata for the certifier's shape inference: a claim that disagrees
    /// with the buffer's declared dims (or another node's claim) is an
    /// `error[shape-mismatch]`.
    pub fn shape(mut self, buf: BufId, dims: &[usize]) -> Self {
        self.shapes.push((buf, dims.to_vec()));
        self
    }
}

/// A DAG of named tasks over declared buffers.
pub struct TaskGraph<'g, S> {
    pub(crate) names: Vec<&'static str>,
    pub(crate) deps: Vec<Vec<NodeId>>,
    #[allow(clippy::type_complexity)]
    tasks: Vec<Box<dyn FnMut(&ExecCtx, &mut S) + Send + 'g>>,
    pub(crate) reads: Vec<Vec<BufId>>,
    pub(crate) writes: Vec<Vec<BufId>>,
    /// Node may join a concurrency wave (declared footprint, not
    /// stochastic, not exclusive, not opaque). Kernel size is checked at
    /// execution time against the backend. The verifier cross-checks this
    /// stored bit against the three flags below.
    pub(crate) wave_ok: Vec<bool>,
    /// Node draws from the context's sampling streams.
    pub(crate) stochastic: Vec<bool>,
    /// Node mutates shared non-buffer state (scalars in `S`).
    pub(crate) exclusive: Vec<bool>,
    /// Node was added via [`TaskGraph::add`] with no declared footprint.
    pub(crate) opaque: Vec<bool>,
    /// Device the node is placed on (0 for single-device graphs).
    pub(crate) device: Vec<u32>,
    /// Node is an inter-device transfer (owns a cross-device edge).
    pub(crate) transfer: Vec<bool>,
    phases: Vec<Option<&'static str>>,
    /// Counter-RNG cursor a stochastic node is bound to ([`NodeSpec::cursor`]).
    pub(crate) cursors: Vec<Option<&'static str>>,
    /// Per-node logical-shape claims ([`NodeSpec::shape`]).
    pub(crate) shape_claims: Vec<Vec<(BufId, Vec<usize>)>>,
    /// Counter-RNG cursors declared on this graph
    /// ([`TaskGraph::declare_rng_cursor`]).
    pub(crate) rng_cursors: Vec<&'static str>,
    pub(crate) bufs: Vec<BufDecl>,
    /// Test-only escape hatch: suppress automatic verification so seeded
    /// mutations can reach the executor (exercised by the race sanitizer).
    skip_verify: bool,
    /// Memoized "already verified clean" bit; mutation hooks clear it.
    verified: bool,
    /// Opt-in acceptance of opaque ([`TaskGraph::add`]) nodes. Shipped
    /// graphs must declare footprints: executors treat opaque nodes as a
    /// verification failure unless this flag is set (test/bench graphs).
    allow_opaque: bool,
}

impl<'g, S> Default for TaskGraph<'g, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'g, S> TaskGraph<'g, S> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph {
            names: Vec::new(),
            deps: Vec::new(),
            tasks: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            wave_ok: Vec::new(),
            stochastic: Vec::new(),
            exclusive: Vec::new(),
            opaque: Vec::new(),
            device: Vec::new(),
            transfer: Vec::new(),
            phases: Vec::new(),
            cursors: Vec::new(),
            shape_claims: Vec::new(),
            rng_cursors: Vec::new(),
            bufs: Vec::new(),
            skip_verify: false,
            verified: false,
            allow_opaque: false,
        }
    }

    /// Accepts opaque ([`TaskGraph::add`]) nodes at execution time. Opaque
    /// nodes are deny-by-default for shipped graphs because the verifier
    /// cannot see their footprints; graphs that intentionally use the
    /// explicit-dependency API (tests, benches, structural experiments)
    /// must opt in.
    pub fn allow_opaque(&mut self) {
        self.allow_opaque = true;
        self.verified = false;
    }

    /// Declares a buffer of `elems` f32 elements; returns its id.
    pub fn declare(&mut self, name: &'static str, elems: usize, class: BufClass) -> BufId {
        self.bufs.push(BufDecl {
            name,
            elems,
            class,
            dims: None,
        });
        BufId(self.bufs.len() - 1)
    }

    /// Declares a buffer with a logical tensor shape; its element count is
    /// the product of `dims`. Identical to [`TaskGraph::declare`] for
    /// planning and execution, but the certifier's shape inference
    /// ([`TaskGraph::certify`]) can prove the graph shape-consistent only
    /// over buffers declared this way.
    pub fn declare_dims(&mut self, name: &'static str, dims: &[usize], class: BufClass) -> BufId {
        let elems = dims.iter().product();
        self.bufs.push(BufDecl {
            name,
            elems,
            class,
            dims: Some(dims.to_vec()),
        });
        BufId(self.bufs.len() - 1)
    }

    /// Declares a named counter-RNG cursor that stochastic nodes may bind
    /// to via [`NodeSpec::cursor`]. Pure certification metadata: the
    /// determinism audit requires every `.stochastic()` node to trace to
    /// one of these.
    pub fn declare_rng_cursor(&mut self, name: &'static str) {
        self.rng_cursors.push(name);
        self.verified = false;
    }

    /// Adds a node whose dependencies are derived from its declared
    /// buffer accesses: it runs after every earlier node it has a
    /// read-after-write, write-after-write or write-after-read conflict
    /// with. Declaration order is therefore always a valid serial schedule.
    pub fn node(
        &mut self,
        spec: NodeSpec,
        task: impl FnMut(&ExecCtx, &mut S) + Send + 'g,
    ) -> NodeId {
        let id = self.names.len();
        for &BufId(b) in spec
            .reads
            .iter()
            .chain(spec.writes.iter())
            .chain(spec.shapes.iter().map(|(b, _)| b))
        {
            assert!(
                b < self.bufs.len(),
                "node {} uses undeclared buffer {b}",
                spec.name
            );
        }
        let mut deps = Vec::new();
        for m in 0..id {
            let raw_or_waw = self.writes[m]
                .iter()
                .any(|w| spec.reads.contains(w) || spec.writes.contains(w));
            let war = self.reads[m].iter().any(|r| spec.writes.contains(r));
            if raw_or_waw || war {
                deps.push(m);
            }
        }
        self.names.push(spec.name);
        self.deps.push(deps);
        self.tasks.push(Box::new(task));
        self.reads.push(spec.reads);
        self.writes.push(spec.writes);
        self.wave_ok.push(!spec.stochastic && !spec.exclusive);
        self.stochastic.push(spec.stochastic);
        self.exclusive.push(spec.exclusive);
        self.opaque.push(false);
        self.device.push(spec.device);
        self.transfer.push(spec.transfer);
        self.phases.push(spec.phase);
        self.cursors.push(spec.cursor);
        self.shape_claims.push(spec.shapes);
        self.verified = false;
        id
    }

    /// Adds an *opaque* task with explicit dependencies; returns its id.
    /// Opaque nodes declare no footprint, so they never join concurrency
    /// waves and induce no automatic conflicts.
    ///
    /// Panics if a dependency id has not been added yet (which also rules
    /// out cycles by construction).
    pub fn add(
        &mut self,
        name: &'static str,
        deps: &[NodeId],
        task: impl FnMut(&ExecCtx, &mut S) + Send + 'g,
    ) -> NodeId {
        let id = self.names.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of node {id} does not exist yet");
        }
        self.names.push(name);
        self.deps.push(deps.to_vec());
        self.tasks.push(Box::new(task));
        self.reads.push(Vec::new());
        self.writes.push(Vec::new());
        self.wave_ok.push(false);
        self.stochastic.push(false);
        self.exclusive.push(false);
        self.opaque.push(true);
        self.device.push(0);
        self.transfer.push(false);
        self.phases.push(None);
        self.cursors.push(None);
        self.shape_claims.push(Vec::new());
        self.verified = false;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &'static str {
        self.names[id]
    }

    /// Name of a declared buffer.
    pub fn buf_name(&self, buf: BufId) -> &'static str {
        self.bufs[buf.0].name
    }

    /// Dependencies of a node.
    pub fn deps(&self, id: NodeId) -> &[NodeId] {
        &self.deps[id]
    }

    /// Longest path length assuming unit node durations (structural depth).
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.len()];
        for id in 0..self.len() {
            d[id] = 1 + self.deps[id].iter().map(|&p| d[p]).max().unwrap_or(0);
        }
        d.into_iter().max().unwrap_or(0)
    }

    /// Largest declared buffer a node touches, in elements — the executor's
    /// proxy for whether the node's kernels can saturate the pool alone.
    fn footprint(&self, id: NodeId) -> usize {
        self.reads[id]
            .iter()
            .chain(self.writes[id].iter())
            .map(|&BufId(b)| self.bufs[b].elems)
            .max()
            .unwrap_or(0)
    }

    /// Strict-ancestor bitsets: `anc[i]` has bit `j` set iff `j` precedes
    /// `i` along dependency edges.
    pub(crate) fn ancestors(&self) -> Vec<Vec<u64>> {
        let n = self.len();
        let words = n.div_ceil(64);
        let mut anc: Vec<Vec<u64>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut mine = vec![0u64; words];
            for &d in &self.deps[i] {
                mine[d / 64] |= 1 << (d % 64);
                for (w, m) in mine.iter_mut().enumerate() {
                    *m |= anc[d][w];
                }
            }
            anc.push(mine);
        }
        anc
    }

    /// Plans arena storage for the declared buffers: computes liveness from
    /// the accessor sets and greedily assigns buffers to shared registers.
    ///
    /// Buffer `A` may share a register with `B` only when every accessor of
    /// `A` strictly precedes every accessor of `B` in the DAG (or vice
    /// versa) — then no schedule the executor may legally pick can have
    /// both live at once. [`BufClass::Pinned`] buffers get dedicated
    /// registers; [`BufClass::External`] buffers get none.
    pub fn plan(&self) -> WorkspacePlan {
        let anc = self.ancestors();
        let precedes = |a: NodeId, b: NodeId| -> bool { anc[b][a / 64] & (1 << (a % 64)) != 0 };
        // Accessor list per buffer, in node order.
        let mut acc: Vec<Vec<NodeId>> = vec![Vec::new(); self.bufs.len()];
        for id in 0..self.len() {
            for &BufId(b) in self.reads[id].iter().chain(self.writes[id].iter()) {
                if acc[b].last() != Some(&id) {
                    acc[b].push(id);
                }
            }
        }
        let all_before =
            |xs: &[NodeId], ys: &[NodeId]| xs.iter().all(|&i| ys.iter().all(|&j| precedes(i, j)));
        let interferes =
            |a: usize, b: usize| !(all_before(&acc[a], &acc[b]) || all_before(&acc[b], &acc[a]));

        let mut assignment: Vec<Option<usize>> = vec![None; self.bufs.len()];
        let mut register_elems: Vec<usize> = Vec::new();
        let mut shareable: Vec<bool> = Vec::new();
        let mut occupants: Vec<Vec<usize>> = Vec::new();
        let mut total = 0usize;
        for (b, decl) in self.bufs.iter().enumerate() {
            if decl.class == BufClass::External {
                continue;
            }
            total += decl.elems;
            if decl.class == BufClass::Pinned {
                assignment[b] = Some(register_elems.len());
                register_elems.push(decl.elems);
                shareable.push(false);
                occupants.push(vec![b]);
                continue;
            }
            let reuse = (0..register_elems.len())
                .find(|&r| shareable[r] && occupants[r].iter().all(|&o| !interferes(b, o)));
            match reuse {
                Some(r) => {
                    assignment[b] = Some(r);
                    register_elems[r] = register_elems[r].max(decl.elems);
                    occupants[r].push(b);
                }
                None => {
                    assignment[b] = Some(register_elems.len());
                    register_elems.push(decl.elems);
                    shareable.push(true);
                    occupants.push(vec![b]);
                }
            }
        }
        WorkspacePlan {
            assignment,
            register_elems,
            buf_elems: self.bufs.iter().map(|d| d.elems).collect(),
            total_declared: total,
        }
    }

    /// Runs every node in declaration order, charging ops directly — the
    /// serial path. Bit- and time-identical to the hand-rolled loop the
    /// graph was derived from: same ops, same order, same sampling streams,
    /// and one profiling span per maximal run of equal phase tags.
    pub fn run_serial(&mut self, ctx: &ExecCtx, state: &mut S) {
        if self.should_verify(ctx) {
            let plan = self.plan();
            self.verify_or_demote(ctx, &plan);
        }
        let mut current: Option<&'static str> = None;
        let mut guard: Option<PhaseGuard<'_>> = None;
        for id in 0..self.len() {
            if self.phases[id] != current {
                drop(guard.take());
                current = self.phases[id];
                guard = current.map(|p| ctx.phase(p));
            }
            let _node = NodeGuard::enter(self.names[id], self.stochastic[id] || self.opaque[id]);
            (self.tasks[id])(ctx, state);
        }
    }

    /// Executes the graph as a *schedule*.
    ///
    /// On a simulated context every node is priced separately
    /// ([`ExecCtx::run_deferred`]) and the clock advances by the critical
    /// path — the quantity the paper's Fig. 6 optimization changes. When
    /// tracing, each node lands on a concurrency lane of the timeline.
    ///
    /// On a native context, consecutive independent nodes whose kernels are
    /// sub-saturating ([`micdnn_kernels::Backend::is_subsaturating`]) run
    /// concurrently, one scoped thread per node; everything else runs in
    /// declaration order. Waves never include stochastic or opaque nodes
    /// and are disabled while the op recorder is on, so results — weights,
    /// sampling streams, recorded op order — are bit-identical to the
    /// serial schedule at any thread count.
    pub fn execute(&mut self, ctx: &ExecCtx, state: &mut S) -> GraphRun
    where
        S: Send,
    {
        let plan = self.plan();
        if self.should_verify(ctx) {
            self.verify_or_demote(ctx, &plan);
        }
        if ctx.is_degraded() {
            // Demoted (verifier error or sanitizer trip under graceful
            // degradation): declaration order is always a valid schedule,
            // so fall back to it for the remainder of the run.
            self.run_serial(ctx, state);
            return GraphRun {
                durations: Vec::new(),
                completion: Vec::new(),
                critical_path: 0.0,
                serial_time: 0.0,
                scratch_elems: plan.total_declared_elems(),
                planned_peak_elems: plan.peak_elems(),
            };
        }
        let n = self.len();
        let mut durations = vec![0.0f64; n];
        let mut completion = vec![0.0f64; n];

        if ctx.cost_model().is_some() {
            for id in 0..n {
                let name = self.names[id];
                let may_sample = self.stochastic[id] || self.opaque[id];
                let task = &mut self.tasks[id];
                let ((), dur) = ctx.run_deferred(|ctx| {
                    let _node = NodeGuard::enter(name, may_sample);
                    task(ctx, state)
                });
                durations[id] = dur;
                let dep_done = self.deps[id]
                    .iter()
                    .map(|&d| completion[d])
                    .fold(0.0f64, f64::max);
                completion[id] = dep_done + dur;
            }
        } else {
            self.run_native_waves(ctx, state, &plan);
        }

        let critical_path = completion.iter().copied().fold(0.0, f64::max);
        let serial: f64 = durations.iter().sum();
        if ctx.trace().is_enabled() && ctx.cost_model().is_some() {
            let t0 = ctx.sim_time();
            // Greedy interval layout: reuse the first lane that is free by
            // the node's start so concurrent nodes fan out over lanes.
            let mut lane_ends: Vec<f64> = Vec::new();
            for id in 0..n {
                let (s, e) = (completion[id] - durations[id], completion[id]);
                let lane = match lane_ends.iter().position(|&le| le <= s) {
                    Some(l) => l,
                    None => {
                        lane_ends.push(0.0);
                        lane_ends.len() - 1
                    }
                };
                lane_ends[lane] = e;
                ctx.trace()
                    .push_lane(t0 + s, t0 + e, EventKind::Node, self.names[id], lane);
            }
        }
        ctx.advance_clock(critical_path, EventKind::Sync, "task-graph");
        GraphRun {
            durations,
            completion,
            critical_path,
            serial_time: serial,
            scratch_elems: plan.total_declared_elems(),
            planned_peak_elems: plan.peak_elems(),
        }
    }

    /// Native execution with node-level concurrency waves.
    fn run_native_waves(&mut self, ctx: &ExecCtx, state: &mut S, plan: &WorkspacePlan)
    where
        S: Send,
    {
        let n = self.len();
        let concurrent =
            !ctx.is_recording() && !ctx.is_degraded() && rayon::current_num_threads() > 1;
        let eligible: Vec<bool> = (0..n)
            .map(|i| self.wave_ok[i] && ctx.backend().is_subsaturating(self.footprint(i)))
            .collect();
        #[cfg(feature = "race-check")]
        let tracker = crate::verify::RaceTracker::new(self, plan);
        #[cfg(not(feature = "race-check"))]
        let _ = plan;
        let TaskGraph {
            deps,
            tasks,
            names,
            stochastic,
            opaque,
            ..
        } = self;
        let (names, stochastic, opaque) = (&*names, &*stochastic, &*opaque);
        let mut id = 0;
        while id < n {
            if concurrent && eligible[id] {
                // A wave is a maximal run of consecutive eligible nodes
                // depending only on nodes before the wave — so members are
                // pairwise independent and everything they wait on has
                // already run.
                let start = id;
                let mut end = id + 1;
                while end < n && eligible[end] && deps[end].iter().all(|&d| d < start) {
                    end += 1;
                }
                if end - start > 1 {
                    let ptr = StatePtr(state as *mut S);
                    let wave: Vec<Box<dyn FnOnce() + Send + '_>> = tasks[start..end]
                        .iter_mut()
                        .enumerate()
                        .map(|(off, task)| {
                            let p = ptr;
                            #[cfg(feature = "race-check")]
                            let tracker = &tracker;
                            Box::new(move || {
                                #[cfg(feature = "race-check")]
                                let _claim = tracker.enter(start + off);
                                let _node = NodeGuard::enter(
                                    names[start + off],
                                    stochastic[start + off] || opaque[start + off],
                                );
                                // SAFETY: wave members carry declared,
                                // pairwise-disjoint read/write footprints
                                // (any conflict would have induced an
                                // in-wave dependency, ending the wave), and
                                // node tasks only touch their declared
                                // buffers — so these aliased `&mut S`
                                // handles never access overlapping memory.
                                // The static verifier re-proves the
                                // disjointness claim per graph; the
                                // `race-check` tracker enforces it at run
                                // time.
                                let s = unsafe { &mut *p.as_raw() };
                                task(ctx, s);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    rayon::run_tasks(wave);
                    id = end;
                    continue;
                }
            }
            {
                #[cfg(feature = "race-check")]
                let _claim = tracker.enter(id);
                let _node = NodeGuard::enter(names[id], stochastic[id] || opaque[id]);
                (tasks[id])(ctx, state);
            }
            id += 1;
        }
    }

    /// Whether this execution should run the static verifier first: always
    /// in debug builds, on request ([`ExecCtx::with_verify`]) in release —
    /// unless the graph already verified clean, the context is already
    /// demoted to the serial schedule, or a test opted out.
    fn should_verify(&self, ctx: &ExecCtx) -> bool {
        !self.skip_verify
            && !self.verified
            && !ctx.is_degraded()
            && (cfg!(debug_assertions) || ctx.verify_enabled())
    }

    /// Runs the static verifier against `plan`. A clean report (no errors,
    /// and no opaque nodes unless [`TaskGraph::allow_opaque`] was called)
    /// memoizes the verified bit. A dirty one panics with the full report —
    /// or, under [`ExecCtx::with_graceful_degradation`], demotes the
    /// context to the serial schedule and records an incident note instead.
    /// Warnings other than denied opaque nodes never fail.
    fn verify_or_demote(&mut self, ctx: &ExecCtx, plan: &WorkspacePlan) {
        let report = self.verify_with_plan(plan);
        let opaque_denied = !self.allow_opaque && report.has(crate::verify::DiagKind::OpaqueNode);
        if report.errors.is_empty() && !opaque_denied {
            self.verified = true;
            return;
        }
        if ctx.degradation_enabled() {
            let what = if report.errors.is_empty() {
                "opaque node(s) in a shipped graph".to_string()
            } else {
                format!("{} verification error(s)", report.errors.len())
            };
            ctx.force_degrade(
                "degraded",
                &format!("graph verification failed ({what}); demoted to the serial schedule"),
            );
            return;
        }
        if report.errors.is_empty() {
            panic!(
                "task-graph verification failed: opaque node(s) in a shipped graph \
                 (declare footprints via TaskGraph::node, or call allow_opaque() on \
                 test graphs):\n{report}"
            );
        }
        panic!("task-graph verification failed:\n{report}");
    }

    /// Removes the inferred edge `dep -> node`, if present. Test-only:
    /// simulates a dependency-inference bug for the verifier suite.
    #[doc(hidden)]
    pub fn testonly_drop_dep(&mut self, node: NodeId, dep: NodeId) {
        self.deps[node].retain(|&d| d != dep);
        self.verified = false;
    }

    /// Marks a node wave-eligible regardless of its flags. Test-only:
    /// simulates a builder bug that lets a side-effecting node into waves.
    #[doc(hidden)]
    pub fn testonly_force_wave_ok(&mut self, node: NodeId) {
        self.wave_ok[node] = true;
        self.verified = false;
    }

    /// Disables automatic verification on execution. Test-only: lets the
    /// `race-check` sanitizer tests run graphs the static pass would
    /// reject.
    #[doc(hidden)]
    pub fn testonly_skip_verify(&mut self) {
        self.skip_verify = true;
    }

    /// Shrinks a buffer's element count by one while leaving its declared
    /// dims intact. Test-only: simulates a builder sizing bug so the
    /// certifier's shape-mismatch rule has something to catch.
    #[doc(hidden)]
    pub fn testonly_shrink_buf(&mut self, buf: BufId) {
        assert!(self.bufs[buf.0].elems > 0, "cannot shrink an empty buffer");
        self.bufs[buf.0].elems -= 1;
        self.verified = false;
    }

    /// Removes every declared RNG cursor. Test-only: simulates a recipe
    /// that samples without a declared counter-RNG cursor, for the
    /// determinism-audit mutation test.
    #[doc(hidden)]
    pub fn testonly_strip_cursor_decls(&mut self) {
        self.rng_cursors.clear();
        self.verified = false;
    }
}

/// Shared-state handle for one concurrency wave; see the safety comment at
/// its use site.
struct StatePtr<S>(*mut S);

impl<S> StatePtr<S> {
    /// Whole-struct accessor: closures must capture the `Send`-asserting
    /// wrapper, not the raw pointer field (edition-2021 precise capture).
    fn as_raw(self) -> *mut S {
        self.0
    }
}

impl<S> Clone for StatePtr<S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S> Copy for StatePtr<S> {}
// SAFETY: the wrapped pointer originates from an exclusive `&mut S` held by
// `run_native_waves` for the whole wave, is only dereferenced inside one
// scoped-thread wave (so it never outlives the borrow), and wave members
// access pairwise-disjoint declared buffers of `S` — invariants re-proven
// per graph by `crate::verify` and policed at run time by the `race-check`
// tracker.
unsafe impl<S: Send> Send for StatePtr<S> {}
// SAFETY: same invariants as the `Send` impl above; `Sync` is needed because
// scoped closures capture the wrapper by reference before moving it.
unsafe impl<S: Send> Sync for StatePtr<S> {}

/// Arena plan produced by [`TaskGraph::plan`]: which register each declared
/// buffer lives in and how big the registers are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkspacePlan {
    /// Register index per buffer (`None` for [`BufClass::External`]).
    pub(crate) assignment: Vec<Option<usize>>,
    /// Size of each register in elements (max over its occupants).
    pub(crate) register_elems: Vec<usize>,
    /// Declared size of each buffer.
    buf_elems: Vec<usize>,
    /// Sum of all arena-managed (non-external) buffer sizes.
    total_declared: usize,
}

impl WorkspacePlan {
    /// Peak arena footprint in elements: the sum of register sizes. Aliasing
    /// makes this smaller than [`WorkspacePlan::total_declared_elems`].
    pub fn peak_elems(&self) -> usize {
        self.register_elems.iter().sum()
    }

    /// What dedicated per-buffer storage would have cost.
    pub fn total_declared_elems(&self) -> usize {
        self.total_declared
    }

    /// The register a buffer was assigned to (`None` for external buffers).
    pub fn register_of(&self, buf: BufId) -> Option<usize> {
        self.assignment[buf.0]
    }

    /// Number of registers in the plan.
    pub fn num_registers(&self) -> usize {
        self.register_elems.len()
    }

    /// Size of one register in elements (max over its occupants).
    pub fn register_size(&self, r: usize) -> usize {
        self.register_elems[r]
    }

    /// Forces `b` into `a`'s register. Test-only: simulates a planner bug
    /// (aliasing two live buffers) for the verifier suite.
    #[doc(hidden)]
    pub fn testonly_force_alias(&mut self, a: BufId, b: BufId) {
        let ra = self.assignment[a.0].expect("buffer `a` must have a register");
        self.assignment[b.0] = Some(ra);
        self.register_elems[ra] = self.register_elems[ra].max(self.buf_elems[b.0]);
    }
}

/// The arena realizing a [`WorkspacePlan`]: one allocation per register,
/// handed out as per-buffer slices. Built once and reused across steps, it
/// replaces per-batch scratch allocation.
#[derive(Debug)]
pub struct Workspace {
    registers: Vec<Vec<f32>>,
    assignment: Vec<Option<usize>>,
    buf_elems: Vec<usize>,
}

impl Workspace {
    /// Allocates the plan's registers (zero-initialized).
    pub fn new(plan: &WorkspacePlan) -> Self {
        Workspace {
            registers: plan.register_elems.iter().map(|&e| vec![0.0; e]).collect(),
            assignment: plan.assignment.clone(),
            buf_elems: plan.buf_elems.clone(),
        }
    }

    /// Total allocated elements.
    pub fn allocated_elems(&self) -> usize {
        self.registers.iter().map(Vec::len).sum()
    }

    fn register(&self, buf: BufId) -> usize {
        self.assignment[buf.0]
            .unwrap_or_else(|| panic!("external buffer {} has no arena storage", buf.0))
    }

    /// The storage of one buffer.
    pub fn buf(&self, buf: BufId) -> &[f32] {
        &self.registers[self.register(buf)][..self.buf_elems[buf.0]]
    }

    /// The storage of one buffer, mutably.
    pub fn buf_mut(&mut self, buf: BufId) -> &mut [f32] {
        let r = self.register(buf);
        let e = self.buf_elems[buf.0];
        &mut self.registers[r][..e]
    }

    /// Mutable views of several buffers at once. Panics if any two share a
    /// register (i.e. were aliased by the planner) — the planner guarantees
    /// buffers live at the same time never do.
    pub fn bufs_mut<const N: usize>(&mut self, ids: [BufId; N]) -> [&mut [f32]; N] {
        let regs = ids.map(|b| self.register(b));
        for i in 0..N {
            for j in i + 1..N {
                assert_ne!(
                    regs[i], regs[j],
                    "buffers {} and {} share a register",
                    ids[i].0, ids[j].0
                );
            }
        }
        let mut k = 0;
        ids.map(|b| {
            let r = regs[k];
            k += 1;
            let e = self.buf_elems[b.0];
            // SAFETY: the registers indexed here are pairwise distinct
            // (asserted above), so the produced slices never overlap, and
            // they all borrow from `self` for the returned lifetime.
            unsafe { std::slice::from_raw_parts_mut(self.registers[r].as_mut_ptr(), e) }
        })
    }
}

/// Result of one [`TaskGraph::execute`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRun {
    /// Simulated seconds each node took in isolation.
    pub durations: Vec<f64>,
    /// Simulated completion time of each node along the critical path.
    pub completion: Vec<f64>,
    /// Critical-path length — what the clock was advanced by.
    pub critical_path: f64,
    /// Sum of all node durations — what a serial schedule would have
    /// charged.
    pub serial_time: f64,
    /// Declared arena footprint without aliasing, in elements.
    pub scratch_elems: usize,
    /// Arena footprint after workspace planning, in elements.
    pub planned_peak_elems: usize,
}

impl GraphRun {
    /// Speedup of the dependency-graph schedule over the serial one.
    pub fn speedup(&self) -> f64 {
        if self.critical_path > 0.0 {
            self.serial_time / self.critical_path
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::OptLevel;
    use micdnn_sim::Platform;

    fn ctx() -> ExecCtx {
        ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 0)
    }

    #[test]
    fn linear_chain_charges_serial_time() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let s = g.declare("s", 100_000, BufClass::External);
        g.node(NodeSpec::new("a").reads(&[s]).writes(&[s]), |ctx, s| {
            ctx.scale(2.0, s)
        });
        g.node(NodeSpec::new("b").reads(&[s]).writes(&[s]), |ctx, s| {
            ctx.scale(0.5, s)
        });
        g.node(NodeSpec::new("c").reads(&[s]).writes(&[s]), |ctx, s| {
            ctx.scale(1.5, s)
        });
        let mut state = vec![1.0f32; 100_000];
        let run = g.execute(&ctx, &mut state);
        assert!((run.critical_path - run.serial_time).abs() < 1e-12);
        assert!((ctx.sim_time() - run.critical_path).abs() < 1e-9);
        assert!((state[0] - 1.5).abs() < 1e-6);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn diamond_charges_critical_path_not_sum() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        g.allow_opaque();
        let a = g.add("a", &[], |ctx, s| ctx.scale(1.0, s));
        let b1 = g.add("b1", &[a], |ctx, s| ctx.scale(1.0, s));
        let b2 = g.add("b2", &[a], |ctx, s| ctx.scale(1.0, s));
        let _c = g.add("c", &[b1, b2], |ctx, s| ctx.scale(1.0, s));
        let mut state = vec![1.0f32; 1_000_000];
        let run = g.execute(&ctx, &mut state);
        // Four equal nodes, critical path of three.
        assert!(
            run.speedup() > 1.2 && run.speedup() < 1.4,
            "speedup {}",
            run.speedup()
        );
        assert!(run.critical_path < run.serial_time);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn wide_graph_speedup_approaches_width() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        g.allow_opaque();
        for _ in 0..8 {
            g.add("leaf", &[], |ctx, s| ctx.scale(1.0, s));
        }
        let mut state = vec![1.0f32; 500_000];
        let run = g.execute(&ctx, &mut state);
        assert!(run.speedup() > 7.5, "speedup {}", run.speedup());
        assert_eq!(g.depth(), 1);
    }

    #[test]
    fn empty_graph_is_free() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        let run = g.execute(&ctx, &mut ());
        assert_eq!(run.critical_path, 0.0);
        assert_eq!(ctx.sim_time(), 0.0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependencies_rejected() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        g.add("bad", &[3], |_, _| {});
    }

    #[test]
    fn nodes_see_state_mutations_in_topo_order() {
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut g: TaskGraph<'_, Vec<u32>> = TaskGraph::new();
        let log_buf = g.declare("log", 2, BufClass::External);
        g.node(
            NodeSpec::new("a").writes(&[log_buf]),
            |_, s: &mut Vec<u32>| s.push(1),
        );
        g.node(
            NodeSpec::new("b").reads(&[log_buf]).writes(&[log_buf]),
            |_, s: &mut Vec<u32>| s.push(2),
        );
        let mut log = Vec::new();
        g.execute(&ctx, &mut log);
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "opaque node(s) in a shipped graph")]
    fn executors_deny_opaque_nodes_by_default() {
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        g.add("opaque", &[], |_, _| {});
        g.execute(&ctx, &mut ());
    }

    #[test]
    fn degradation_demotes_instead_of_panicking() {
        let ctx = ExecCtx::native(OptLevel::Improved, 0).with_graceful_degradation();
        let mut g: TaskGraph<'_, Vec<u32>> = TaskGraph::new();
        let x = g.declare("x", 4, BufClass::Scratch);
        let out = g.declare("out", 4, BufClass::Pinned);
        let p = g.node(
            NodeSpec::new("produce").writes(&[x]),
            |_, s: &mut Vec<u32>| s.push(1),
        );
        let c = g.node(
            NodeSpec::new("consume").reads(&[x]).writes(&[out]),
            |_, s: &mut Vec<u32>| s.push(2),
        );
        // Simulate a builder bug: the verifier now reports a race, which
        // would panic without graceful degradation.
        g.testonly_drop_dep(c, p);
        let mut log = Vec::new();
        g.execute(&ctx, &mut log);
        assert!(ctx.is_degraded(), "verify error must demote");
        assert_eq!(log, vec![1, 2], "demoted run still executes serially");
        let notes = ctx.take_incident_notes();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].0, "degraded");
        assert!(notes[0].1.contains("serial"), "{}", notes[0].1);
        // Degradation latches: later graphs skip verification and run
        // serially too.
        let mut g2: TaskGraph<'_, Vec<u32>> = TaskGraph::new();
        g2.add("opaque", &[], |_, s: &mut Vec<u32>| s.push(3));
        g2.execute(&ctx, &mut log);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "undeclared-stochastic")]
    fn undeclared_sampling_in_a_node_body_is_caught() {
        let ctx = ExecCtx::native(OptLevel::Improved, 3);
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let out = g.declare("out", 16, BufClass::External);
        // Draws from the sampling stream without declaring .stochastic().
        g.node(
            NodeSpec::new("sneaky").writes(&[out]),
            |ctx, s: &mut Vec<f32>| {
                let probs = vec![0.5f32; 16];
                ctx.bernoulli(&probs, s);
            },
        );
        let mut state = vec![0.0f32; 16];
        g.run_serial(&ctx, &mut state);
    }

    #[test]
    fn declared_stochastic_nodes_may_sample() {
        let ctx = ExecCtx::native(OptLevel::Improved, 3);
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let out = g.declare("out", 16, BufClass::External);
        g.node(
            NodeSpec::new("sample").writes(&[out]).stochastic(),
            |ctx, s: &mut Vec<f32>| {
                let probs = vec![0.5f32; 16];
                ctx.bernoulli(&probs, s);
            },
        );
        let mut state = vec![0.0f32; 16];
        g.run_serial(&ctx, &mut state);
        // Outside node bodies sampling is always allowed.
        let mut direct = vec![0.0f32; 16];
        ctx.bernoulli(&[0.5f32; 16], &mut direct);
    }

    #[test]
    fn declared_nodes_derive_raw_waw_war_deps() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        let x = g.declare("x", 8, BufClass::Scratch);
        let y = g.declare("y", 8, BufClass::Scratch);
        let w = g.declare("w", 8, BufClass::External);
        let p = g.node(NodeSpec::new("produce").writes(&[x]), |_, _| {});
        let c = g.node(NodeSpec::new("consume").reads(&[x]).writes(&[y]), |_, _| {});
        // WAW on x with `produce`, WAR on x with `consume`.
        let o = g.node(NodeSpec::new("overwrite").writes(&[x]), |_, _| {});
        // Reads only the external param: no conflicts at all.
        let free = g.node(NodeSpec::new("free").reads(&[w]), |_, _| {});
        assert_eq!(g.deps(p), &[] as &[NodeId]);
        assert_eq!(g.deps(c), &[p]);
        assert_eq!(g.deps(o), &[p, c]);
        assert_eq!(g.deps(free), &[] as &[NodeId]);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "undeclared buffer")]
    fn undeclared_buffer_rejected() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        g.node(NodeSpec::new("bad").reads(&[BufId(4)]), |_, _| {});
    }

    #[test]
    fn planner_aliases_strictly_ordered_buffers_only() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        let a = g.declare("a", 100, BufClass::Scratch);
        let b = g.declare("b", 60, BufClass::Scratch);
        let c = g.declare("c", 40, BufClass::Scratch);
        let pin = g.declare("pin", 10, BufClass::Pinned);
        // a is dead once `mid` consumed it; b is born in `mid`. a and c are
        // both live across `mid` -> `late` from the DAG's point of view? No:
        // c is only touched by `late`, which strictly follows every
        // accessor of a — but b's writer IS an accessor concurrent with
        // nothing after it except `late`, which reads b.
        let first = g.node(NodeSpec::new("first").writes(&[a, pin]), |_, _| {});
        let mid = g.node(NodeSpec::new("mid").reads(&[a]).writes(&[b]), |_, _| {});
        let late = g.node(NodeSpec::new("late").reads(&[b]).writes(&[c]), |_, _| {});
        assert_eq!(g.deps(mid), &[first]);
        assert_eq!(g.deps(late), &[mid]);
        let plan = g.plan();
        // a's accessors {first, mid} all strictly precede c's {late}.
        assert_eq!(plan.register_of(a), plan.register_of(c));
        // b is live between mid and late, interfering with both a and c.
        assert_ne!(plan.register_of(b), plan.register_of(a));
        // Pinned storage is never shared.
        assert_ne!(plan.register_of(pin), plan.register_of(a));
        assert_ne!(plan.register_of(pin), plan.register_of(b));
        // Peak: max(a, c) + b + pin = 100 + 60 + 10 < 100 + 60 + 40 + 10.
        assert_eq!(plan.total_declared_elems(), 210);
        assert_eq!(plan.peak_elems(), 170);
    }

    #[test]
    fn workspace_hands_out_disjoint_register_slices() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        let a = g.declare("a", 16, BufClass::Scratch);
        let b = g.declare("b", 8, BufClass::Scratch);
        g.node(NodeSpec::new("w").writes(&[a, b]), |_, _| {});
        let plan = g.plan();
        let mut ws = Workspace::new(&plan);
        assert_eq!(ws.allocated_elems(), 24);
        let [sa, sb] = ws.bufs_mut([a, b]);
        sa.fill(1.0);
        sb.fill(2.0);
        assert_eq!(sa.len(), 16);
        assert_eq!(sb.len(), 8);
        assert!(ws.buf(a).iter().all(|&v| v == 1.0));
        assert!(ws.buf(b).iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "share a register")]
    fn workspace_rejects_aliased_pairs() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        let a = g.declare("a", 16, BufClass::Scratch);
        let t = g.declare("t", 4, BufClass::Pinned);
        let b = g.declare("b", 8, BufClass::Scratch);
        let first = g.node(NodeSpec::new("first").writes(&[a]), |_, _| {});
        assert_eq!(g.deps(first), &[] as &[NodeId]);
        g.node(NodeSpec::new("mid").reads(&[a]).writes(&[t]), |_, _| {});
        g.node(NodeSpec::new("last").reads(&[t]).writes(&[b]), |_, _| {});
        // b's only accessor strictly follows both of a's -> aliased.
        let plan = g.plan();
        assert_eq!(plan.register_of(a), plan.register_of(b));
        let mut ws = Workspace::new(&plan);
        ws.bufs_mut([a, b]);
    }

    #[test]
    fn native_wave_execution_matches_serial_bitwise() {
        use micdnn_tensor::Mat;
        // Four independent colmean-style reductions: small enough to be
        // sub-saturating, so execute() runs them as one concurrent wave.
        struct S {
            src: Mat,
            outs: [Vec<f32>; 4],
        }
        let build = |g: &mut TaskGraph<'_, S>| {
            let src = g.declare("src", 64 * 32, BufClass::External);
            for i in 0..4 {
                let out = g.declare("out", 32, BufClass::Pinned);
                g.node(
                    NodeSpec::new("colmean").reads(&[src]).writes(&[out]),
                    move |ctx, s: &mut S| {
                        let v = s.src.view();
                        ctx.colmean(v, &mut s.outs[i]);
                    },
                );
            }
        };
        let mk_state = || S {
            src: Mat::from_fn(64, 32, |r, c| (r * 31 + c) as f32 / 7.0),
            outs: std::array::from_fn(|_| vec![0.0f32; 32]),
        };
        let ctx = ExecCtx::native(OptLevel::Improved, 0);

        let mut serial_state = mk_state();
        let mut g1: TaskGraph<'_, S> = TaskGraph::new();
        build(&mut g1);
        g1.run_serial(&ctx, &mut serial_state);

        let mut wave_state = mk_state();
        let mut g2: TaskGraph<'_, S> = TaskGraph::new();
        build(&mut g2);
        g2.execute(&ctx, &mut wave_state);

        for i in 0..4 {
            assert_eq!(serial_state.outs[i], wave_state.outs[i], "node {i}");
        }
    }

    #[test]
    fn run_serial_charges_ops_directly() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let buf = g.declare("buf", 10_000, BufClass::External);
        g.node(
            NodeSpec::new("scale").reads(&[buf]).writes(&[buf]),
            |ctx, s: &mut Vec<f32>| ctx.scale(2.0, s),
        );
        let mut state = vec![1.0f32; 10_000];
        g.run_serial(&ctx, &mut state);
        assert!(ctx.sim_time() > 0.0, "serial runs charge the clock per op");
        assert!((state[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simulated_execute_traces_nodes_on_lanes() {
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 0).with_trace();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let a = g.declare("a", 200_000, BufClass::Scratch);
        let b = g.declare("b", 200_000, BufClass::Scratch);
        g.node(
            NodeSpec::new("left").writes(&[a]),
            |ctx, s: &mut Vec<f32>| ctx.scale(1.5, s),
        );
        g.node(
            NodeSpec::new("right").writes(&[b]),
            |ctx, s: &mut Vec<f32>| ctx.scale(0.5, s),
        );
        let mut state = vec![1.0f32; 200_000];
        g.execute(&ctx, &mut state);
        let nodes: Vec<_> = ctx
            .trace()
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Node)
            .collect();
        assert_eq!(nodes.len(), 2);
        // Independent nodes overlap in time, so they land on distinct lanes.
        assert_eq!(nodes[0].lane, 0);
        assert_eq!(nodes[1].lane, 1);
        assert_eq!(nodes[0].label, "left");
    }
}
