//! Dependency-graph execution of one CD step (paper Fig. 6).
//!
//! §IV.B.1's fourth optimization observes that the matrix operations of one
//! RBM gradient computation form a small DAG: once `H1` is known, the
//! reconstruction `V2` and the positive statistics can proceed
//! concurrently; once `V2` is known, `Vb`, `H2` and the negative visible
//! statistics are independent; and the three final gradients are mutually
//! independent. Running independent nodes concurrently shortens the step
//! from the serial sum of its ops to the *critical path*.
//!
//! [`TaskGraph`] is a generic small-DAG scheduler. Nodes execute in a
//! deterministic topological order (their kernels are already
//! rayon-parallel inside, so node-level threading would only fight the pool
//! for cores), while the *simulated* clock advances by the critical path —
//! which is precisely the quantity the paper's optimization changes.

use crate::exec::ExecCtx;
use micdnn_sim::EventKind;

/// Identifier of a node within a [`TaskGraph`].
pub type NodeId = usize;

/// A DAG of named tasks with explicit dependencies.
pub struct TaskGraph<'g, S> {
    names: Vec<&'static str>,
    deps: Vec<Vec<NodeId>>,
    #[allow(clippy::type_complexity)]
    tasks: Vec<Box<dyn FnMut(&ExecCtx, &mut S) + 'g>>,
}

impl<'g, S> Default for TaskGraph<'g, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'g, S> TaskGraph<'g, S> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph {
            names: Vec::new(),
            deps: Vec::new(),
            tasks: Vec::new(),
        }
    }

    /// Adds a task that runs after every node in `deps`; returns its id.
    ///
    /// Panics if a dependency id has not been added yet (which also rules
    /// out cycles by construction).
    pub fn add(
        &mut self,
        name: &'static str,
        deps: &[NodeId],
        task: impl FnMut(&ExecCtx, &mut S) + 'g,
    ) -> NodeId {
        let id = self.names.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of node {id} does not exist yet");
        }
        self.names.push(name);
        self.deps.push(deps.to_vec());
        self.tasks.push(Box::new(task));
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Executes every node against `state`, charging the simulated clock by
    /// the graph's critical path. Returns the per-node durations and the
    /// critical-path length in simulated seconds.
    ///
    /// Nodes run in insertion order, which [`TaskGraph::add`] guarantees is
    /// a valid topological order.
    pub fn execute(&mut self, ctx: &ExecCtx, state: &mut S) -> GraphRun {
        let n = self.len();
        let mut durations = vec![0.0f64; n];
        let mut completion = vec![0.0f64; n];
        for id in 0..n {
            let task = &mut self.tasks[id];
            let ((), dur) = ctx.run_deferred(|ctx| task(ctx, state));
            durations[id] = dur;
            let dep_done = self.deps[id]
                .iter()
                .map(|&d| completion[d])
                .fold(0.0f64, f64::max);
            completion[id] = dep_done + dur;
        }
        let critical_path = completion.iter().copied().fold(0.0, f64::max);
        let serial: f64 = durations.iter().sum();
        ctx.advance_clock(critical_path, EventKind::Sync, "task-graph");
        GraphRun {
            durations,
            completion,
            critical_path,
            serial_time: serial,
        }
    }

    /// Name of a node.
    pub fn name(&self, id: NodeId) -> &'static str {
        self.names[id]
    }

    /// Longest path length assuming unit node durations (structural depth).
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.len()];
        for id in 0..self.len() {
            d[id] = 1 + self.deps[id].iter().map(|&p| d[p]).max().unwrap_or(0);
        }
        d.into_iter().max().unwrap_or(0)
    }
}

/// Result of one [`TaskGraph::execute`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRun {
    /// Simulated seconds each node took in isolation.
    pub durations: Vec<f64>,
    /// Simulated completion time of each node along the critical path.
    pub completion: Vec<f64>,
    /// Critical-path length — what the clock was advanced by.
    pub critical_path: f64,
    /// Sum of all node durations — what a serial schedule would have
    /// charged.
    pub serial_time: f64,
}

impl GraphRun {
    /// Speedup of the dependency-graph schedule over the serial one.
    pub fn speedup(&self) -> f64 {
        if self.critical_path > 0.0 {
            self.serial_time / self.critical_path
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::OptLevel;
    use micdnn_sim::Platform;

    fn ctx() -> ExecCtx {
        ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 0)
    }

    #[test]
    fn linear_chain_charges_serial_time() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let a = g.add("a", &[], |ctx, s| ctx.scale(2.0, s));
        let b = g.add("b", &[a], |ctx, s| ctx.scale(0.5, s));
        let _c = g.add("c", &[b], |ctx, s| ctx.scale(1.5, s));
        let mut state = vec![1.0f32; 100_000];
        let run = g.execute(&ctx, &mut state);
        assert!((run.critical_path - run.serial_time).abs() < 1e-12);
        assert!((ctx.sim_time() - run.critical_path).abs() < 1e-9);
        assert!((state[0] - 1.5).abs() < 1e-6);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn diamond_charges_critical_path_not_sum() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        let a = g.add("a", &[], |ctx, s| ctx.scale(1.0, s));
        let b1 = g.add("b1", &[a], |ctx, s| ctx.scale(1.0, s));
        let b2 = g.add("b2", &[a], |ctx, s| ctx.scale(1.0, s));
        let _c = g.add("c", &[b1, b2], |ctx, s| ctx.scale(1.0, s));
        let mut state = vec![1.0f32; 1_000_000];
        let run = g.execute(&ctx, &mut state);
        // Four equal nodes, critical path of three.
        assert!(
            run.speedup() > 1.2 && run.speedup() < 1.4,
            "speedup {}",
            run.speedup()
        );
        assert!(run.critical_path < run.serial_time);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn wide_graph_speedup_approaches_width() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        for _ in 0..8 {
            g.add("leaf", &[], |ctx, s| ctx.scale(1.0, s));
        }
        let mut state = vec![1.0f32; 500_000];
        let run = g.execute(&ctx, &mut state);
        assert!(run.speedup() > 7.5, "speedup {}", run.speedup());
        assert_eq!(g.depth(), 1);
    }

    #[test]
    fn empty_graph_is_free() {
        let ctx = ctx();
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        let run = g.execute(&ctx, &mut ());
        assert_eq!(run.critical_path, 0.0);
        assert_eq!(ctx.sim_time(), 0.0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependencies_rejected() {
        let mut g: TaskGraph<'_, ()> = TaskGraph::new();
        g.add("bad", &[3], |_, _| {});
    }

    #[test]
    fn nodes_see_state_mutations_in_topo_order() {
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut g: TaskGraph<'_, Vec<u32>> = TaskGraph::new();
        let a = g.add("a", &[], |_, s: &mut Vec<u32>| s.push(1));
        g.add("b", &[a], |_, s: &mut Vec<u32>| s.push(2));
        let mut log = Vec::new();
        g.execute(&ctx, &mut log);
        assert_eq!(log, vec![1, 2]);
    }
}
