//! The paper's Fig. 6: one CD-k update built as a declared-buffer
//! dependency graph.
//!
//! Node layout for CD-1 (names follow the figure; `V1` is the clamped
//! data, per-op nodes are finer than the figure's boxes):
//!
//! ```text
//! H1   = p(h|V1)                 (root)
//! S1   = sample(H1)              (needs H1; stochastic)
//! V2   = p(v|S1)                 (needs S1)
//! RE   = recon error             (needs V2)
//! H2   = p(h|V2)                 (needs V2)       — concurrent with RE
//! POS  = H1'V1 statistics        (needs H1)       — concurrent with V2…
//! NEG  = H2'V2 statistics        (needs H2)
//! VPOS/VNEG/HPOS/HNEG bias stats (mutually independent)
//! Vw, Vb, Vc parameter updates   (each needs only its statistics)
//! ```
//!
//! CD-k repeats the `sample → V2 → H2` block `k` times. The same builder
//! backs both execution styles: [`Rbm::cd_step`] runs it with
//! [`TaskGraph::run_serial`] (declaration order *is* the original serial
//! op order, so results, sampling streams, recorded op streams and
//! profiling spans are unchanged), while [`cd_step_graph`] runs it with
//! [`TaskGraph::execute`], advancing the simulated clock by the critical
//! path — quantifying what the paper's "compute Vb, H2 and C in parallel"
//! optimization buys.
//!
//! The declared buffers also feed the workspace planner: for CD-1 the
//! hidden *samples* (`S1`'s output) are dead before the reconstruction
//! hiddens (`H2`'s output) are born, so [`TaskGraph::plan`] aliases the
//! two `b x h` buffers into one arena register.

use crate::exec::ExecCtx;
use crate::graph::{BufClass, GraphRun, NodeSpec, TaskGraph};
use crate::layers::{Decl, Emit, Layer, Part, StackBuilder};
use crate::rbm::{Rbm, RbmScratch};
use micdnn_tensor::MatView;

/// Mutable state one CD graph run threads through its nodes.
pub struct CdState<'a> {
    pub(crate) rbm: &'a mut Rbm,
    pub(crate) scratch: &'a mut RbmScratch,
    pub(crate) v0: MatView<'a>,
    pub(crate) lr: f32,
    pub(crate) recon_err: f64,
}

// All CD layers share one registry slot: the chain is one RBM layer seen
// through four passes (data phase, Gibbs chain, statistics, updates).
const RBM: usize = 0;

/// Data phase: H1 hidden probabilities from the clamped batch, S1 their
/// Bernoulli sample.
struct CdData {
    n_visible: usize,
    n_hidden: usize,
    b: usize,
}

impl<'a> Layer<CdState<'a>> for CdData {
    fn tag(&self) -> &'static str {
        "cd-data"
    }

    fn declare(&self, sb: &mut StackBuilder<CdState<'a>>, what: Decl) {
        let (v, h, b) = (self.n_visible, self.n_hidden, self.b);
        match what {
            // Model parameters and the clamped batch: analysis-only
            // externals.
            Decl::Params => {
                sb.bind_dims(RBM, "w", "w", &[h, v], BufClass::External);
                sb.bind_dims(RBM, "b_vis", "b_vis", &[v], BufClass::External);
                sb.bind_dims(RBM, "c_hid", "c_hid", &[h], BufClass::External);
            }
            // Per-batch temporaries (the figure's H1 and its sample);
            // scratch class makes them aliasing candidates.
            Decl::Acts => {
                sb.bind_dims(RBM, "h0_prob", "h0_prob", &[b, h], BufClass::Scratch);
                sb.bind_dims(RBM, "h0_sample", "h0_sample", &[b, h], BufClass::Scratch);
            }
            _ => {}
        }
    }

    fn emit(&self, sb: &mut StackBuilder<CdState<'a>>, what: Emit) {
        if what != Emit::Forward {
            return;
        }
        let b = self.b;
        // H1: hidden probabilities from the data.
        let (v0, w, c_hid, h0_prob) = (
            sb.global("v0"),
            sb.buf(RBM, "w"),
            sb.buf(RBM, "c_hid"),
            sb.buf(RBM, "h0_prob"),
        );
        sb.node(
            NodeSpec::new("H1")
                .reads(&[v0, w, c_hid])
                .writes(&[h0_prob])
                .phase("forward"),
            move |ctx, s: &mut CdState<'_>| {
                let v = s.v0;
                s.rbm.prop_up(ctx, v, &mut s.scratch.h0_prob);
            },
        );
        // S1: sample the data-phase hiddens (consumes a sampling stream,
        // so it must stay in declaration order).
        let h0_sample = sb.buf(RBM, "h0_sample");
        sb.node(
            NodeSpec::new("S1")
                .reads(&[h0_prob])
                .writes(&[h0_sample])
                .stochastic()
                .cursor("gibbs")
                .phase("forward"),
            move |ctx, s: &mut CdState<'_>| {
                let (hp, hs) = (&s.scratch.h0_prob, &mut s.scratch.h0_sample);
                let probs = hp.rows_range(0, b);
                let mut sample = hs.rows_range_mut(0, b);
                ctx.bernoulli(probs.as_slice(), sample.as_mut_slice());
            },
        );
    }
}

/// The Gibbs chain: `k` sweeps of V2 <- p(v | samples), H2 <- p(h | V2),
/// resampling the hiddens between sweeps; the first sweep also probes the
/// reconstruction error.
struct CdChain {
    n_visible: usize,
    n_hidden: usize,
    b: usize,
    cd_steps: usize,
}

impl<'a> Layer<CdState<'a>> for CdChain {
    fn tag(&self) -> &'static str {
        "cd-chain"
    }

    fn declare(&self, sb: &mut StackBuilder<CdState<'a>>, what: Decl) {
        let (v, h, b) = (self.n_visible, self.n_hidden, self.b);
        if what == Decl::Acts {
            sb.bind_dims(RBM, "v1_prob", "v1_prob", &[b, v], BufClass::Scratch);
            sb.bind_dims(RBM, "h1_prob", "h1_prob", &[b, h], BufClass::Scratch);
        }
    }

    fn emit(&self, sb: &mut StackBuilder<CdState<'a>>, what: Emit) {
        if what != Emit::Backward {
            return;
        }
        let b = self.b;
        let (v0, w, b_vis, c_hid) = (
            sb.global("v0"),
            sb.buf(RBM, "w"),
            sb.buf(RBM, "b_vis"),
            sb.buf(RBM, "c_hid"),
        );
        let (h0_sample, v1_prob, h1_prob) = (
            sb.buf(RBM, "h0_sample"),
            sb.buf(RBM, "v1_prob"),
            sb.buf(RBM, "h1_prob"),
        );
        for step in 0..self.cd_steps {
            if step > 0 {
                sb.node(
                    NodeSpec::new("Sk")
                        .reads(&[h1_prob])
                        .writes(&[h0_sample])
                        .stochastic()
                        .cursor("gibbs")
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let (h1, hs) = (&s.scratch.h1_prob, &mut s.scratch.h0_sample);
                        let probs = h1.rows_range(0, b);
                        let mut sample = hs.rows_range_mut(0, b);
                        ctx.bernoulli(probs.as_slice(), sample.as_mut_slice());
                    },
                );
            }
            sb.node(
                NodeSpec::new("V2")
                    .reads(&[h0_sample, w, b_vis])
                    .writes(&[v1_prob])
                    .phase("backward"),
                move |ctx, s: &mut CdState<'_>| {
                    let (rbm, scr) = (&*s.rbm, &mut *s.scratch);
                    rbm.prop_down(ctx, scr.h0_sample.rows_range(0, b), &mut scr.v1_prob);
                },
            );
            if step == 0 {
                // Reconstruction error; writes a state scalar the buffer
                // analysis cannot see, hence exclusive.
                sb.node(
                    NodeSpec::new("RE")
                        .reads(&[v1_prob, v0])
                        .exclusive()
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let (scr, v) = (&*s.scratch, s.v0);
                        s.recon_err = ctx.frob_dist_sq(scr.v1_prob.rows_range(0, b), v) / b as f64;
                    },
                );
            }
            sb.node(
                NodeSpec::new("H2")
                    .reads(&[v1_prob, w, c_hid])
                    .writes(&[h1_prob])
                    .phase("backward"),
                move |ctx, s: &mut CdState<'_>| {
                    let (rbm, scr) = (&*s.rbm, &mut *s.scratch);
                    rbm.prop_up(ctx, scr.v1_prob.rows_range(0, b), &mut scr.h1_prob);
                },
            );
        }
    }
}

/// Sufficient statistics: pos = H0'V0, neg = H1'V1 (probabilities —
/// Hinton §3) under `Grads(Weights)`, the four bias column means under
/// `Grads(Biases)`.
struct CdStats {
    n_visible: usize,
    n_hidden: usize,
    b: usize,
}

impl<'a> Layer<CdState<'a>> for CdStats {
    fn tag(&self) -> &'static str {
        "cd-stats"
    }

    fn declare(&self, sb: &mut StackBuilder<CdState<'a>>, what: Decl) {
        let (v, h) = (self.n_visible, self.n_hidden);
        match what {
            // Statistics are read after the run (momentum folds them into
            // velocity buffers), so they keep dedicated storage.
            Decl::Grads(Part::Weights) => {
                sb.bind_dims(RBM, "pos_stats", "pos_stats", &[h, v], BufClass::Pinned);
                sb.bind_dims(RBM, "neg_stats", "neg_stats", &[h, v], BufClass::Pinned);
            }
            Decl::Grads(Part::Biases) => {
                sb.bind_dims(RBM, "vis_pos", "vis_pos", &[v], BufClass::Pinned);
                sb.bind_dims(RBM, "vis_neg", "vis_neg", &[v], BufClass::Pinned);
                sb.bind_dims(RBM, "hid_pos", "hid_pos", &[h], BufClass::Pinned);
                sb.bind_dims(RBM, "hid_neg", "hid_neg", &[h], BufClass::Pinned);
            }
            _ => {}
        }
    }

    fn emit(&self, sb: &mut StackBuilder<CdState<'a>>, what: Emit) {
        let b = self.b;
        let inv_b = 1.0 / b as f32;
        match what {
            Emit::Grads(Part::Weights) => {
                let (v0, h0_prob, pos_stats) = (
                    sb.global("v0"),
                    sb.buf(RBM, "h0_prob"),
                    sb.buf(RBM, "pos_stats"),
                );
                sb.node(
                    NodeSpec::new("POS")
                        .reads(&[h0_prob, v0])
                        .writes(&[pos_stats])
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let scr = &mut *s.scratch;
                        ctx.gemm(
                            inv_b,
                            scr.h0_prob.rows_range(0, b),
                            true,
                            s.v0,
                            false,
                            0.0,
                            &mut scr.pos_stats.view_mut(),
                        );
                    },
                );
                let (h1_prob, v1_prob, neg_stats) = (
                    sb.buf(RBM, "h1_prob"),
                    sb.buf(RBM, "v1_prob"),
                    sb.buf(RBM, "neg_stats"),
                );
                sb.node(
                    NodeSpec::new("NEG")
                        .reads(&[h1_prob, v1_prob])
                        .writes(&[neg_stats])
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let scr = &mut *s.scratch;
                        let (h1p, v1p, neg) = (&scr.h1_prob, &scr.v1_prob, &mut scr.neg_stats);
                        ctx.gemm(
                            inv_b,
                            h1p.rows_range(0, b),
                            true,
                            v1p.rows_range(0, b),
                            false,
                            0.0,
                            &mut neg.view_mut(),
                        );
                    },
                );
            }
            Emit::Grads(Part::Biases) => {
                let (v0, vis_pos) = (sb.global("v0"), sb.buf(RBM, "vis_pos"));
                sb.node(
                    NodeSpec::new("VPOS")
                        .reads(&[v0])
                        .writes(&[vis_pos])
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let v = s.v0;
                        ctx.colmean(v, &mut s.scratch.vis_pos);
                    },
                );
                let (v1_prob, vis_neg) = (sb.buf(RBM, "v1_prob"), sb.buf(RBM, "vis_neg"));
                sb.node(
                    NodeSpec::new("VNEG")
                        .reads(&[v1_prob])
                        .writes(&[vis_neg])
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let scr = &mut *s.scratch;
                        let (v1, out) = (&scr.v1_prob, &mut scr.vis_neg);
                        ctx.colmean(v1.rows_range(0, b), out);
                    },
                );
                let (h0_prob, hid_pos) = (sb.buf(RBM, "h0_prob"), sb.buf(RBM, "hid_pos"));
                sb.node(
                    NodeSpec::new("HPOS")
                        .reads(&[h0_prob])
                        .writes(&[hid_pos])
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let scr = &mut *s.scratch;
                        let (hp, out) = (&scr.h0_prob, &mut scr.hid_pos);
                        ctx.colmean(hp.rows_range(0, b), out);
                    },
                );
                let (h1_prob, hid_neg) = (sb.buf(RBM, "h1_prob"), sb.buf(RBM, "hid_neg"));
                sb.node(
                    NodeSpec::new("HNEG")
                        .reads(&[h1_prob])
                        .writes(&[hid_neg])
                        .phase("backward"),
                    move |ctx, s: &mut CdState<'_>| {
                        let scr = &mut *s.scratch;
                        let (h1p, out) = (&scr.h1_prob, &mut scr.hid_neg);
                        ctx.colmean(h1p.rows_range(0, b), out);
                    },
                );
            }
            _ => {}
        }
    }
}

/// Updates (paper eqs. 11–13): the figure's last rank, mutually
/// independent — Vw under `Update(Weights)`, Vb and Vc under
/// `Update(Biases)`.
struct CdUpdates;

impl<'a> Layer<CdState<'a>> for CdUpdates {
    fn tag(&self) -> &'static str {
        "cd-updates"
    }

    fn emit(&self, sb: &mut StackBuilder<CdState<'a>>, what: Emit) {
        match what {
            Emit::Update(Part::Weights) => {
                let (pos_stats, neg_stats, w) = (
                    sb.buf(RBM, "pos_stats"),
                    sb.buf(RBM, "neg_stats"),
                    sb.buf(RBM, "w"),
                );
                sb.node(
                    NodeSpec::new("Vw")
                        .reads(&[pos_stats, neg_stats, w])
                        .writes(&[w])
                        .phase("update"),
                    move |ctx, s: &mut CdState<'_>| {
                        let (rbm, scr) = (&mut *s.rbm, &*s.scratch);
                        ctx.cd_update(
                            s.lr,
                            scr.pos_stats.as_slice(),
                            scr.neg_stats.as_slice(),
                            rbm.w.as_mut_slice(),
                        );
                    },
                );
            }
            Emit::Update(Part::Biases) => {
                let (vis_pos, vis_neg, b_vis) = (
                    sb.buf(RBM, "vis_pos"),
                    sb.buf(RBM, "vis_neg"),
                    sb.buf(RBM, "b_vis"),
                );
                sb.node(
                    NodeSpec::new("Vb")
                        .reads(&[vis_pos, vis_neg, b_vis])
                        .writes(&[b_vis])
                        .phase("update"),
                    move |ctx, s: &mut CdState<'_>| {
                        let (rbm, scr) = (&mut *s.rbm, &*s.scratch);
                        ctx.cd_update(s.lr, &scr.vis_pos, &scr.vis_neg, &mut rbm.b_vis);
                    },
                );
                let (hid_pos, hid_neg, c_hid) = (
                    sb.buf(RBM, "hid_pos"),
                    sb.buf(RBM, "hid_neg"),
                    sb.buf(RBM, "c_hid"),
                );
                sb.node(
                    NodeSpec::new("Vc")
                        .reads(&[hid_pos, hid_neg, c_hid])
                        .writes(&[c_hid])
                        .phase("update"),
                    move |ctx, s: &mut CdState<'_>| {
                        let (rbm, scr) = (&mut *s.rbm, &*s.scratch);
                        ctx.cd_update(s.lr, &scr.hid_pos, &scr.hid_neg, &mut rbm.c_hid);
                    },
                );
            }
            _ => {}
        }
    }
}

/// Builds the CD-k step over `b` examples as a [`StackBuilder`] recipe
/// over the data/chain/statistics/update layers, whose declaration order
/// is exactly the serial op order of the classic `cd_step` loop. Storage
/// is bound to the fields of [`RbmScratch`]; the declarations describe
/// their sizes and lifetimes to the planner.
///
/// Public so integration tests can run every shipped graph shape through
/// [`TaskGraph::verify`]; training entry points use it via
/// [`cd_step_graph`] and [`Rbm::cd_step`].
pub fn build_cd_graph<'a>(
    n_visible: usize,
    n_hidden: usize,
    b: usize,
    cd_steps: usize,
) -> TaskGraph<'static, CdState<'a>> {
    assert!(cd_steps >= 1, "CD needs at least one step");
    let mut sb: StackBuilder<CdState<'a>> = StackBuilder::new();
    let data = CdData {
        n_visible,
        n_hidden,
        b,
    };
    let chain = CdChain {
        n_visible,
        n_hidden,
        b,
        cd_steps,
    };
    let stats = CdStats {
        n_visible,
        n_hidden,
        b,
    };
    let updates = CdUpdates;

    // Historical declaration order: batch, parameters, the four chain
    // temporaries, then the pinned statistics. The Gibbs sampling nodes
    // (S1/Sk) all draw through one declared counter-RNG cursor.
    sb.declare_rng_cursor("gibbs");
    sb.bind_global_dims("v0", "v0", &[b, n_visible], BufClass::External);
    data.declare(&mut sb, Decl::Params);
    data.declare(&mut sb, Decl::Acts);
    chain.declare(&mut sb, Decl::Acts);
    stats.declare(&mut sb, Decl::Grads(Part::Weights));
    stats.declare(&mut sb, Decl::Grads(Part::Biases));

    // Historical node order: H1+S1, the Gibbs chain, POS/NEG, the bias
    // means, then the three updates.
    data.emit(&mut sb, Emit::Forward);
    chain.emit(&mut sb, Emit::Backward);
    stats.emit(&mut sb, Emit::Grads(Part::Weights));
    stats.emit(&mut sb, Emit::Grads(Part::Biases));
    updates.emit(&mut sb, Emit::Update(Part::Weights));
    updates.emit(&mut sb, Emit::Update(Part::Biases));
    sb.finish()
}

/// One CD-k update scheduled as the Fig. 6 dependency graph.
///
/// Bit-identical to [`Rbm::cd_step`] given the same sampler state — both
/// run the same graph, this one under the critical-path schedule. Returns
/// the reconstruction error and the schedule.
pub fn cd_step_graph(
    rbm: &mut Rbm,
    ctx: &ExecCtx,
    v0: MatView<'_>,
    scratch: &mut RbmScratch,
    learning_rate: f32,
) -> (f64, GraphRun) {
    let b = v0.rows();
    assert!(b > 0, "empty batch");
    assert!(b <= scratch.capacity(), "batch exceeds scratch capacity");
    let cfg = *rbm.config();
    let mut g = build_cd_graph(cfg.n_visible, cfg.n_hidden, b, cfg.cd_steps);
    let mut state = CdState {
        rbm,
        scratch,
        v0,
        lr: learning_rate,
        recon_err: 0.0,
    };
    let run = g.execute(ctx, &mut state);
    (state.recon_err, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecCtx, OptLevel};
    use crate::rbm::RbmConfig;
    use micdnn_sim::Platform;
    use micdnn_tensor::Mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Structured binary data (two alternating prototypes + flip noise) so
    /// CD training has something to learn.
    fn batch(b: usize, v: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(b, v, |r, c| {
            let proto = if r % 2 == 0 {
                (c % 2) as f32
            } else {
                ((c + 1) % 2) as f32
            };
            if rng.gen_bool(0.05) {
                1.0 - proto
            } else {
                proto
            }
        })
    }

    #[test]
    fn graph_step_matches_serial_step_bitwise() {
        let cfg = RbmConfig::new(14, 9);
        let v = batch(20, 14, 1);

        let mut rbm_serial = Rbm::new(cfg, 2);
        let ctx_serial = ExecCtx::native(OptLevel::Improved, 3);
        let mut s_serial = RbmScratch::new(&cfg, 20);

        let mut rbm_graph = Rbm::new(cfg, 2);
        let ctx_graph = ExecCtx::native(OptLevel::Improved, 3);
        let mut s_graph = RbmScratch::new(&cfg, 20);

        for _ in 0..5 {
            let e1 = rbm_serial.cd_step(&ctx_serial, v.view(), &mut s_serial, 0.1);
            let (e2, _) = cd_step_graph(&mut rbm_graph, &ctx_graph, v.view(), &mut s_graph, 0.1);
            assert_eq!(e1, e2, "reconstruction errors diverged");
        }
        assert_eq!(rbm_serial.w.as_slice(), rbm_graph.w.as_slice());
        assert_eq!(rbm_serial.b_vis, rbm_graph.b_vis);
        assert_eq!(rbm_serial.c_hid, rbm_graph.c_hid);
    }

    #[test]
    fn cdk_graph_matches_serial_step_bitwise() {
        let cfg = RbmConfig::new(12, 7).with_cd_steps(3);
        let v = batch(16, 12, 21);

        let mut rbm_serial = Rbm::new(cfg, 22);
        let ctx_serial = ExecCtx::native(OptLevel::Improved, 23);
        let mut s_serial = RbmScratch::new(&cfg, 16);

        let mut rbm_graph = Rbm::new(cfg, 22);
        let ctx_graph = ExecCtx::native(OptLevel::Improved, 23);
        let mut s_graph = RbmScratch::new(&cfg, 16);

        for _ in 0..5 {
            let e1 = rbm_serial.cd_step(&ctx_serial, v.view(), &mut s_serial, 0.1);
            let (e2, _) = cd_step_graph(&mut rbm_graph, &ctx_graph, v.view(), &mut s_graph, 0.1);
            assert_eq!(e1, e2, "reconstruction errors diverged");
        }
        assert_eq!(rbm_serial.w.as_slice(), rbm_graph.w.as_slice());
        assert_eq!(rbm_serial.b_vis, rbm_graph.b_vis);
        assert_eq!(rbm_serial.c_hid, rbm_graph.c_hid);
        // Same sampler cursor after either path: stream order preserved.
        assert_eq!(ctx_serial.rng_state(), ctx_graph.rng_state());
    }

    #[test]
    fn critical_path_beats_serial_schedule() {
        let cfg = RbmConfig::new(256, 512);
        let mut rbm = Rbm::new(cfg, 4);
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 5);
        let mut scratch = RbmScratch::new(&cfg, 64);
        let v = batch(64, 256, 6);
        let (_, run) = cd_step_graph(&mut rbm, &ctx, v.view(), &mut scratch, 0.1);
        assert!(
            run.critical_path < run.serial_time,
            "graph gained nothing: cp {} vs serial {}",
            run.critical_path,
            run.serial_time
        );
        assert!(
            run.speedup() > 1.0 && run.speedup() < 3.0,
            "speedup {}",
            run.speedup()
        );
        assert!((ctx.sim_time() - run.critical_path).abs() < 1e-9);
    }

    #[test]
    fn graph_training_converges() {
        let cfg = RbmConfig::new(16, 10);
        let mut rbm = Rbm::new(cfg, 7);
        let ctx = ExecCtx::native(OptLevel::Improved, 8);
        let mut scratch = RbmScratch::new(&cfg, 32);
        let v = batch(32, 16, 9);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..200 {
            let (e, _) = cd_step_graph(&mut rbm, &ctx, v.view(), &mut scratch, 0.1);
            if i == 0 {
                first = e;
            }
            last = e;
        }
        assert!(last < 0.7 * first, "{first} -> {last}");
    }

    #[test]
    fn planner_aliases_hidden_samples_with_recon_hiddens() {
        // The paper's Table 1 network: 1024 visibles, 4096 hiddens. For
        // CD-1 the hidden samples die at V2, before the reconstruction
        // hiddens are born at H2, so one `b x h` buffer is saved.
        let (v, h, b) = (1024, 4096, 100);
        let g = build_cd_graph(v, h, b, 1);
        let plan = g.plan();
        assert_eq!(
            plan.peak_elems() + b * h,
            plan.total_declared_elems(),
            "planner should fold h0_sample into h1_prob's register"
        );
        assert!(plan.peak_elems() < plan.total_declared_elems());

        // CD-k resamples from h1_prob while h0_sample is live, so the
        // alias is illegal there — the planner must keep them apart.
        let g2 = build_cd_graph(v, h, b, 2);
        let plan2 = g2.plan();
        assert_eq!(plan2.peak_elems(), plan2.total_declared_elems());
    }
}
