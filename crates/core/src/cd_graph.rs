//! The paper's Fig. 6: one CD-1 update as an explicit dependency graph.
//!
//! Node layout (names follow the figure; `V1` is the clamped data):
//!
//! ```text
//! H1 = sample(p(h|V1))          (root)
//! POS = H1'V1 statistics        (needs H1)
//! V2 = p(v|H1)                  (needs H1)        — concurrent with POS
//! VISNEG + recon error          (needs V2)
//! H2 = p(h|V2)                  (needs V2)        — concurrent with VISNEG
//! NEG = H2'V2 statistics        (needs H2)
//! Vw, Vb, Vc parameter updates  (each needs only its statistics)
//! ```
//!
//! Executing this graph instead of the serial order advances the simulated
//! clock by the critical path; the [`crate::graph::GraphRun`] it returns
//! quantifies how much the paper's "compute Vb, H2 and C in parallel"
//! optimization actually buys.

use crate::exec::ExecCtx;
use crate::graph::{GraphRun, TaskGraph};
use crate::rbm::{Rbm, RbmScratch};
use micdnn_tensor::MatView;

struct CdState<'a> {
    rbm: &'a mut Rbm,
    scratch: &'a mut RbmScratch,
    v0: MatView<'a>,
    lr: f32,
    recon_err: f64,
}

/// One CD-1 update scheduled as the Fig. 6 dependency graph.
///
/// Functionally identical to [`Rbm::cd_step`] with `cd_steps = 1`
/// (bit-identical given the same sampler state); only the simulated time
/// accounting differs. Returns the reconstruction error and the graph
/// schedule.
pub fn cd_step_graph(
    rbm: &mut Rbm,
    ctx: &ExecCtx,
    v0: MatView<'_>,
    scratch: &mut RbmScratch,
    learning_rate: f32,
) -> (f64, GraphRun) {
    let b = v0.rows();
    assert!(b > 0, "empty batch");
    assert_eq!(
        rbm.config().cd_steps,
        1,
        "the Fig. 6 graph describes CD-1; use Rbm::cd_step for CD-k"
    );

    let mut g: TaskGraph<'_, CdState<'_>> = TaskGraph::new();

    // H1: hidden probabilities + sample from the data.
    let h1 = g.add("H1", &[], move |ctx, s: &mut CdState<'_>| {
        let v0 = s.v0;
        s.rbm.prop_up(ctx, v0, &mut s.scratch.h0_prob);
        let (hp, hs) = (&s.scratch.h0_prob, &mut s.scratch.h0_sample);
        let probs = hp.rows_range(0, b);
        let mut sample = hs.rows_range_mut(0, b);
        ctx.bernoulli(probs.as_slice(), sample.as_mut_slice());
    });

    // POS: positive statistics (weights + both bias sides of the data).
    let pos = g.add("POS", &[h1], move |ctx, s: &mut CdState<'_>| {
        let inv_b = 1.0 / b as f32;
        ctx.gemm(
            inv_b,
            s.scratch.h0_prob.rows_range(0, b),
            true,
            s.v0,
            false,
            0.0,
            &mut s.scratch.pos_stats.view_mut(),
        );
        ctx.colmean(s.v0, &mut s.scratch.vis_pos);
        let (hp, out) = (&s.scratch.h0_prob, &mut s.scratch.hid_pos);
        ctx.colmean(hp.rows_range(0, b), out);
    });

    // V2: reconstruction.
    let v2 = g.add("V2", &[h1], move |ctx, s: &mut CdState<'_>| {
        let (rbm, scr) = (&*s.rbm, &mut *s.scratch);
        rbm.prop_down(ctx, scr.h0_sample.rows_range(0, b), &mut scr.v1_prob);
    });

    // VISNEG: negative visible statistics + reconstruction error.
    let visneg = g.add("VISNEG", &[v2], move |ctx, s: &mut CdState<'_>| {
        let (scr, v0) = (&mut *s.scratch, s.v0);
        s.recon_err = ctx.frob_dist_sq(scr.v1_prob.rows_range(0, b), v0) / b as f64;
        let (v1, out) = (&scr.v1_prob, &mut scr.vis_neg);
        ctx.colmean(v1.rows_range(0, b), out);
    });

    // H2: hidden probabilities of the reconstruction.
    let h2 = g.add("H2", &[v2], move |ctx, s: &mut CdState<'_>| {
        let (rbm, scr) = (&*s.rbm, &mut *s.scratch);
        rbm.prop_up(ctx, scr.v1_prob.rows_range(0, b), &mut scr.h1_prob);
    });

    // NEG: negative weight + hidden statistics.
    let neg = g.add("NEG", &[h2], move |ctx, s: &mut CdState<'_>| {
        let inv_b = 1.0 / b as f32;
        let scr = &mut *s.scratch;
        let (h1p, v1p, neg_stats) = (&scr.h1_prob, &scr.v1_prob, &mut scr.neg_stats);
        ctx.gemm(
            inv_b,
            h1p.rows_range(0, b),
            true,
            v1p.rows_range(0, b),
            false,
            0.0,
            &mut neg_stats.view_mut(),
        );
        let (h1p, out) = (&scr.h1_prob, &mut scr.hid_neg);
        ctx.colmean(h1p.rows_range(0, b), out);
    });

    // The three independent parameter updates of the figure's last rank.
    g.add("Vw", &[pos, neg], move |ctx, s: &mut CdState<'_>| {
        let (rbm, scr) = (&mut *s.rbm, &*s.scratch);
        ctx.cd_update(
            s.lr,
            scr.pos_stats.as_slice(),
            scr.neg_stats.as_slice(),
            rbm.w.as_mut_slice(),
        );
    });
    g.add("Vb", &[pos, visneg], move |ctx, s: &mut CdState<'_>| {
        let (rbm, scr) = (&mut *s.rbm, &*s.scratch);
        ctx.cd_update(s.lr, &scr.vis_pos, &scr.vis_neg, &mut rbm.b_vis);
    });
    g.add("Vc", &[pos, neg], move |ctx, s: &mut CdState<'_>| {
        let (rbm, scr) = (&mut *s.rbm, &*s.scratch);
        ctx.cd_update(s.lr, &scr.hid_pos, &scr.hid_neg, &mut rbm.c_hid);
    });

    let mut state = CdState {
        rbm,
        scratch,
        v0,
        lr: learning_rate,
        recon_err: 0.0,
    };
    let run = g.execute(ctx, &mut state);
    (state.recon_err, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecCtx, OptLevel};
    use crate::rbm::RbmConfig;
    use micdnn_sim::Platform;
    use micdnn_tensor::Mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Structured binary data (two alternating prototypes + flip noise) so
    /// CD training has something to learn.
    fn batch(b: usize, v: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat::from_fn(b, v, |r, c| {
            let proto = if r % 2 == 0 {
                (c % 2) as f32
            } else {
                ((c + 1) % 2) as f32
            };
            if rng.gen_bool(0.05) {
                1.0 - proto
            } else {
                proto
            }
        })
    }

    #[test]
    fn graph_step_matches_serial_step_bitwise() {
        let cfg = RbmConfig::new(14, 9);
        let v = batch(20, 14, 1);

        let mut rbm_serial = Rbm::new(cfg, 2);
        let ctx_serial = ExecCtx::native(OptLevel::Improved, 3);
        let mut s_serial = RbmScratch::new(&cfg, 20);

        let mut rbm_graph = Rbm::new(cfg, 2);
        let ctx_graph = ExecCtx::native(OptLevel::Improved, 3);
        let mut s_graph = RbmScratch::new(&cfg, 20);

        for _ in 0..5 {
            let e1 = rbm_serial.cd_step(&ctx_serial, v.view(), &mut s_serial, 0.1);
            let (e2, _) = cd_step_graph(&mut rbm_graph, &ctx_graph, v.view(), &mut s_graph, 0.1);
            assert_eq!(e1, e2, "reconstruction errors diverged");
        }
        assert_eq!(rbm_serial.w.as_slice(), rbm_graph.w.as_slice());
        assert_eq!(rbm_serial.b_vis, rbm_graph.b_vis);
        assert_eq!(rbm_serial.c_hid, rbm_graph.c_hid);
    }

    #[test]
    fn critical_path_beats_serial_schedule() {
        let cfg = RbmConfig::new(256, 512);
        let mut rbm = Rbm::new(cfg, 4);
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 5);
        let mut scratch = RbmScratch::new(&cfg, 64);
        let v = batch(64, 256, 6);
        let (_, run) = cd_step_graph(&mut rbm, &ctx, v.view(), &mut scratch, 0.1);
        assert!(
            run.critical_path < run.serial_time,
            "graph gained nothing: cp {} vs serial {}",
            run.critical_path,
            run.serial_time
        );
        assert!(
            run.speedup() > 1.0 && run.speedup() < 3.0,
            "speedup {}",
            run.speedup()
        );
        assert!((ctx.sim_time() - run.critical_path).abs() < 1e-9);
    }

    #[test]
    fn graph_training_converges() {
        let cfg = RbmConfig::new(16, 10);
        let mut rbm = Rbm::new(cfg, 7);
        let ctx = ExecCtx::native(OptLevel::Improved, 8);
        let mut scratch = RbmScratch::new(&cfg, 32);
        let v = batch(32, 16, 9);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..200 {
            let (e, _) = cd_step_graph(&mut rbm, &ctx, v.view(), &mut scratch, 0.1);
            if i == 0 {
                first = e;
            }
            last = e;
        }
        assert!(last < 0.7 * first, "{first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "CD-1")]
    fn cdk_rejected() {
        let cfg = RbmConfig::new(8, 4).with_cd_steps(2);
        let mut rbm = Rbm::new(cfg, 0);
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut scratch = RbmScratch::new(&cfg, 4);
        let v = batch(4, 8, 0);
        cd_step_graph(&mut rbm, &ctx, v.view(), &mut scratch, 0.1);
    }
}
