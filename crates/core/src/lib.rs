//! `micdnn` — parallel unsupervised pre-training of deep networks on a
//! many-core coprocessor, reproducing Jin, Wang, Gu, Yuan & Huang,
//! *"Training Large Scale Deep Neural Networks on the Intel Xeon Phi
//! Many-core Coprocessor"* (IPDPSW 2014).
//!
//! The paper parallelizes the two classic unsupervised building blocks —
//! the **Sparse Autoencoder** (back-propagation with L2 + KL-sparsity
//! regularization) and the **Restricted Boltzmann Machine** (CD-1) — on the
//! Intel Xeon Phi, using OpenMP threading, 512-bit vectorization, MKL for
//! the matrix products, loop fusion, a dependency graph over the CD step's
//! matrix ops, and a double-buffered loading thread that hides PCIe
//! transfers.
//!
//! This crate is the faithful functional implementation of all of that,
//! organized so that the same code serves three roles:
//!
//! * a **real training library** — kernels genuinely thread (rayon) and
//!   vectorize; models genuinely converge on real data;
//! * a **performance reproduction** — every kernel invocation carries a
//!   cost descriptor priced by `micdnn-sim`'s Xeon Phi / Xeon E5620 machine
//!   models, regenerating the paper's figures and Table I in simulated
//!   seconds (that hardware no longer being obtainable);
//! * a **benchmark body** — the Criterion suite in `micdnn-bench` times the
//!   very same entry points in wall-clock.
//!
//! # Quickstart
//!
//! ```
//! use micdnn::{AeConfig, AeModel, ExecCtx, OptLevel, SparseAutoencoder};
//! use micdnn::train::{train_dataset, TrainConfig};
//! use micdnn_data::{Dataset, DigitGenerator};
//!
//! // Synthetic handwritten digits, normalized for sigmoid units.
//! let mut digits = DigitGenerator::new(12, 7);
//! let mut data = Dataset::new(digits.matrix(256));
//! data.normalize();
//!
//! // A 144 -> 64 sparse autoencoder at the paper's best optimization rung.
//! let ae = SparseAutoencoder::new(AeConfig::new(144, 64), 1);
//! let mut model = AeModel::new(ae);
//! let ctx = ExecCtx::native(OptLevel::Improved, 42);
//!
//! let cfg = TrainConfig { batch_size: 64, chunk_rows: 128, ..Default::default() };
//! let report = train_dataset(&mut model, &ctx, &data, &cfg, 5).unwrap();
//! assert!(report.final_recon() < report.initial_recon());
//! ```

pub mod ae_graph;
pub mod analytic;
pub mod autoencoder;
pub mod batch_opt;
pub mod cd_graph;
pub mod checkpoint;
pub mod cnn;
pub mod exec;
pub mod faults;
pub mod finetune;
pub mod gradcheck;
pub mod graph;
pub mod hybrid;
pub mod layers;
pub mod metrics;
pub mod model_io;
pub mod multidev;
pub mod optim;
pub mod profile;
pub mod rbm;
pub mod serve;
pub mod stacked;
pub mod supervise;
pub mod train;
pub mod verify;

pub use ae_graph::ae_step_graph;
pub use analytic::{estimate, Algo, Estimate, Workload};
pub use autoencoder::{AeConfig, AeCost, AeScratch, SparseAutoencoder};
pub use batch_opt::{conjugate_gradient, lbfgs, AeObjective, BatchOptOptions, Objective};
pub use cd_graph::cd_step_graph;
pub use checkpoint::{
    load_checkpoint, load_checkpoint_file, save_checkpoint, save_checkpoint_file, Checkpoint,
    CheckpointError, CheckpointModel, CheckpointPolicy, TrainProgress,
};
pub use cnn::{build_cnn_graph, CnnConfig, CnnModel, CnnNet, CnnState};
pub use exec::{ExecCtx, OptLevel, PhaseGuard};
pub use finetune::{FineTuneModel, FineTuneNet, SoftmaxLayer};
pub use gradcheck::{check_autoencoder, GradCheckResult};
pub use graph::{BufClass, BufId, GraphRun, NodeSpec, TaskGraph, Workspace, WorkspacePlan};
pub use hybrid::{estimate_hybrid, optimal_fraction, HybridAeTrainer, HybridConfig};
pub use layers::{Above, Decl, Emit, Layer, Part, StackBuilder, StackState, StepParts};
pub use metrics::{
    activation_stats, feature_ascii, feature_grid, reconstruction_stats, write_pgm,
    ActivationStats, ReconstructionStats,
};
pub use model_io::{
    atomic_write, load_autoencoder_file, load_rbm_file, save_autoencoder_file, save_rbm_file,
    ShapeMismatch,
};
pub use multidev::{
    block_bounds, DataParallelAe, DataParallelRbm, MultiDevConfig, MultiDevConfigError,
    MultiDevModelState, MultiDevState,
};
pub use optim::{Optimizer, Rule, Schedule};
pub use profile::{LatencyReport, OpReport, PhaseReport, ProfileReport, Profiler, StreamReport};
pub use rbm::{Rbm, RbmConfig, RbmScratch};
pub use serve::{
    build_forward_graph, serve_requests, Request, RequestOutcome, ServeConfig, ServeConfigError,
    ServeError, ServeReport, ServeRun, ServeState,
};
pub use stacked::{DeepBeliefNet, LayerReport, PipelineReport, PipelineState, StackedAutoencoder};
pub use supervise::{
    train_dataset_supervised, Incident, IncidentLog, Recoverable, RunPos, RunSupervisor, Stage,
    SupervisorPolicy, SupervisorPolicyError, INCIDENT_SCHEMA, INCIDENT_SCHEMA_V1,
};
pub use train::{
    train_dataset, train_dataset_resume, train_stream, AeModel, RbmModel, TrainConfig, TrainError,
    TrainReport, UnsupervisedModel,
};
pub use verify::{
    CertifyBundle, CertifyDoc, CertifyOutcome, DevicePeak, DevicePeakDoc, DiagKind, Diagnostic,
    FindingDoc, Severity, VerifyReport, DEFAULT_MEM_BUDGET, VERIFY_SCHEMA,
};
