//! Analytic op streams and workload estimates — model-only sweeps.
//!
//! The paper's evaluation runs workloads like "1 million 4096-dimensional
//! examples through a 1024×4096 autoencoder": executing that functionally
//! on CI hardware would take hours per data point. Because every kernel's
//! cost descriptor is a pure function of its operand sizes (see
//! [`micdnn_kernels::Backend`]'s `*_cost` methods), the exact op stream of
//! a training step can be enumerated without executing it. This module does
//! that enumeration and prices whole training runs, replicating the
//! double-buffered stream accounting of [`micdnn_sim::ChunkStream`]
//! step-for-step.
//!
//! Integration tests pin these streams to the ones recorded from real
//! execution (`ExecCtx::start_recording`), so the figures produced from
//! them are the figures an executed run would produce.

use crate::exec::OptLevel;
use micdnn_kernels::{Backend, OpCost};
use micdnn_sim::{CostModel, Link, Platform};

/// The op stream of one [`crate::SparseAutoencoder::train_batch`] call
/// (cost+grad+update) on a `b x v` batch with hidden width `h`.
pub fn ae_batch_ops(v: usize, h: usize, b: usize, backend: Backend) -> Vec<OpCost> {
    vec![
        // forward
        backend.gemm_cost(b, h, v),       // a2 = x W1^T
        backend.bias_sigmoid_cost(b * h), // a2 = sigmoid(a2 + b1)
        backend.gemm_cost(b, v, h),       // a3 = a2 W2^T
        backend.bias_sigmoid_cost(b * v), // a3 = sigmoid(a3 + b2)
        // cost + sparsity statistics
        backend.reduce_cost(b, v), // reconstruction error
        backend.reduce_cost(b, h), // rho_hat
        // backward
        backend.delta_output_cost(b * v), // delta3
        backend.gemm_cost(v, h, b),       // gw2 = delta3^T a2
        backend.reduce_cost(b, v),        // gb2
        backend.gemm_cost(b, h, v),       // delta2 = delta3 W2
        backend.bias_deriv_cost(b * h),   // delta2 ⊙ sparsity ⊙ deriv
        backend.gemm_cost(h, v, b),       // gw1 = delta2^T x
        backend.reduce_cost(b, h),        // gb1
        // update
        backend.sgd_cost(h * v),
        backend.sgd_cost(v * h),
        backend.sgd_cost(h),
        backend.sgd_cost(v),
    ]
}

/// The op stream of one [`crate::Rbm::cd_step`] call with CD-1 on a
/// `b x v` batch with hidden width `h`.
pub fn rbm_cd1_ops(v: usize, h: usize, b: usize, backend: Backend) -> Vec<OpCost> {
    vec![
        // positive phase
        backend.gemm_cost(b, h, v),       // h0 pre-activation
        backend.bias_sigmoid_cost(b * h), // h0 prob
        backend.sample_cost(b * h),       // h0 sample
        // gibbs step
        backend.gemm_cost(b, v, h),       // v1 pre-activation
        backend.bias_sigmoid_cost(b * v), // v1 prob
        backend.reduce_cost(b, v),        // reconstruction error
        backend.gemm_cost(b, h, v),       // h1 pre-activation
        backend.bias_sigmoid_cost(b * h), // h1 prob
        // statistics
        backend.gemm_cost(h, v, b), // positive stats
        backend.gemm_cost(h, v, b), // negative stats
        backend.reduce_cost(b, v),  // vis_pos
        backend.reduce_cost(b, v),  // vis_neg
        backend.reduce_cost(b, h),  // hid_pos
        backend.reduce_cost(b, h),  // hid_neg
        // updates
        backend.cd_update_cost(h * v),
        backend.cd_update_cost(v),
        backend.cd_update_cost(h),
    ]
}

/// Which of the two training algorithms a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Sparse autoencoder back-propagation.
    Autoencoder,
    /// RBM with CD-1.
    Rbm,
}

/// One experimental workload (an x-axis point of a paper figure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Training algorithm.
    pub algo: Algo,
    /// Visible / input width.
    pub n_visible: usize,
    /// Hidden width.
    pub n_hidden: usize,
    /// Total training examples (one pass).
    pub examples: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Rows per host→device chunk.
    pub chunk_rows: usize,
    /// Training passes over the data. Data is transferred once and stays
    /// resident on the device (the paper's Table I iterates 200 times over
    /// one resident 10 000-example batch); only the first pass pays
    /// transfers.
    pub passes: usize,
}

impl Workload {
    /// Op stream of one full-size batch.
    pub fn batch_ops(&self, backend: Backend) -> Vec<OpCost> {
        match self.algo {
            Algo::Autoencoder => ae_batch_ops(self.n_visible, self.n_hidden, self.batch, backend),
            Algo::Rbm => rbm_cd1_ops(self.n_visible, self.n_hidden, self.batch, backend),
        }
    }

    /// Bytes of one chunk.
    pub fn chunk_bytes(&self) -> u64 {
        (self.chunk_rows * self.n_visible * std::mem::size_of::<f32>()) as u64
    }
}

/// Predicted timing of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Seconds of kernel compute.
    pub compute_secs: f64,
    /// Seconds of host→device transfer (overlapped or not).
    pub transfer_secs: f64,
    /// Transfer seconds the compute actually waited for.
    pub stall_secs: f64,
    /// End-to-end simulated seconds.
    pub total_secs: f64,
}

impl Estimate {
    /// Fraction of transfer hidden behind compute.
    pub fn hidden_fraction(&self) -> f64 {
        if self.transfer_secs <= 0.0 {
            0.0
        } else {
            (1.0 - self.stall_secs / self.transfer_secs).max(0.0)
        }
    }
}

/// Prices one pass of `workload` on `platform` at `level`, replicating the
/// trainer's chunk/batch loop and the stream's double-buffer accounting.
pub fn estimate(
    level: OptLevel,
    platform: Platform,
    link: Link,
    double_buffered: bool,
    workload: &Workload,
) -> Estimate {
    let backend = level.backend();
    let model = CostModel::new(platform);
    let parallel = backend.par().is_parallel();

    // Per-batch compute, cached by batch size (full and trailing partial).
    let price_batch = |b: usize| -> f64 {
        let ops = match workload.algo {
            Algo::Autoencoder => ae_batch_ops(workload.n_visible, workload.n_hidden, b, backend),
            Algo::Rbm => rbm_cd1_ops(workload.n_visible, workload.n_hidden, b, backend),
        };
        model.price_all(ops.iter(), parallel)
    };
    let full_batch_cost = price_batch(workload.batch);

    // Compute time of a chunk with `rows` rows.
    let chunk_compute = |rows: usize| -> f64 {
        let full = rows / workload.batch;
        let rem = rows % workload.batch;
        let mut t = full as f64 * full_batch_cost;
        if rem > 0 {
            t += price_batch(rem);
        }
        t
    };

    // Replicate ChunkStream: per-chunk transfer model.
    let full_chunks = workload.examples / workload.chunk_rows;
    let rem_rows = workload.examples % workload.chunk_rows;
    let t_chunk = |rows: usize| -> f64 {
        link.transfer_time((rows * workload.n_visible * std::mem::size_of::<f32>()) as u64)
    };

    let mut clock = 0.0f64;
    let mut ready = 0.0f64;
    let mut compute_started = 0.0f64;
    let mut transfer_secs = 0.0;
    let mut stall_secs = 0.0;
    let mut compute_secs = 0.0;

    let mut run_chunk = |rows: usize| {
        let t = t_chunk(rows);
        transfer_secs += t;
        if double_buffered {
            let started = compute_started.max(ready);
            ready = started + t;
            if ready > clock {
                stall_secs += ready - clock;
                clock = ready;
            }
        } else {
            clock += t;
            stall_secs += t;
        }
        compute_started = clock;
        let c = chunk_compute(rows);
        compute_secs += c;
        clock += c;
    };

    for _ in 0..full_chunks {
        run_chunk(workload.chunk_rows);
    }
    if rem_rows > 0 {
        run_chunk(rem_rows);
    }

    // Subsequent passes run on resident data: pure compute, no transfers.
    assert!(workload.passes >= 1, "need at least one pass");
    if workload.passes > 1 {
        let one_pass_compute = compute_secs;
        let extra = (workload.passes - 1) as f64 * one_pass_compute;
        compute_secs += extra;
        clock += extra;
    }

    Estimate {
        compute_secs,
        transfer_secs,
        stall_secs,
        total_secs: clock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload {
            algo: Algo::Autoencoder,
            n_visible: 64,
            n_hidden: 32,
            examples: 1000,
            batch: 100,
            chunk_rows: 500,
            passes: 1,
        }
    }

    #[test]
    fn op_streams_have_expected_length() {
        let be = Backend::improved();
        assert_eq!(ae_batch_ops(10, 5, 8, be).len(), 17);
        assert_eq!(rbm_cd1_ops(10, 5, 8, be).len(), 17);
    }

    #[test]
    fn gemm_flops_dominate_large_batches() {
        let ops = ae_batch_ops(1024, 4096, 1000, Backend::improved());
        let total: u64 = ops.iter().map(|o| o.flops).sum();
        let gemm: u64 = ops
            .iter()
            .filter(|o| o.kind == micdnn_kernels::OpKind::Gemm)
            .map(|o| o.flops)
            .sum();
        assert!(gemm as f64 / total as f64 > 0.98, "gemm share too small");
    }

    #[test]
    fn estimate_monotone_in_examples() {
        let lvl = OptLevel::Improved;
        let mut w = workload();
        let t1 = estimate(lvl, Platform::xeon_phi(), Link::pcie_gen2(), true, &w).total_secs;
        w.examples *= 4;
        let t4 = estimate(lvl, Platform::xeon_phi(), Link::pcie_gen2(), true, &w).total_secs;
        assert!(t4 > 3.0 * t1 && t4 < 5.0 * t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn double_buffering_reduces_total() {
        let w = Workload {
            chunk_rows: 100,
            ..workload()
        };
        let link = Link::paper_measured();
        let with = estimate(OptLevel::Improved, Platform::xeon_phi(), link, true, &w);
        let without = estimate(OptLevel::Improved, Platform::xeon_phi(), link, false, &w);
        assert!(with.total_secs <= without.total_secs);
        assert!((without.stall_secs - without.transfer_secs).abs() < 1e-12);
        assert!(with.hidden_fraction() >= 0.0);
    }

    #[test]
    fn ladder_is_monotone() {
        let w = workload();
        let mut last = f64::INFINITY;
        for lvl in OptLevel::ladder() {
            let t = estimate(lvl, Platform::xeon_phi(), Link::pcie_gen2(), true, &w).compute_secs;
            assert!(t < last, "{lvl:?} not faster than previous: {t} vs {last}");
            last = t;
        }
    }

    #[test]
    fn resident_passes_multiply_compute_not_transfer() {
        let mut w = workload();
        let e1 = estimate(
            OptLevel::Improved,
            Platform::xeon_phi(),
            Link::paper_measured(),
            true,
            &w,
        );
        w.passes = 5;
        let e5 = estimate(
            OptLevel::Improved,
            Platform::xeon_phi(),
            Link::paper_measured(),
            true,
            &w,
        );
        assert_eq!(e1.transfer_secs, e5.transfer_secs);
        assert!((e5.compute_secs - 5.0 * e1.compute_secs).abs() < 1e-12);
    }

    #[test]
    fn partial_chunks_and_batches_are_counted() {
        let w = Workload {
            algo: Algo::Rbm,
            n_visible: 10,
            n_hidden: 5,
            examples: 157, // 1 chunk of 100 + 57; batches of 25 + remainders
            batch: 25,
            chunk_rows: 100,
            passes: 1,
        };
        let e = estimate(
            OptLevel::Improved,
            Platform::xeon_phi(),
            Link::pcie_gen2(),
            true,
            &w,
        );
        assert!(e.compute_secs > 0.0 && e.total_secs >= e.compute_secs);
    }
}
