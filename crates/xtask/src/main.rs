//! Workspace lint pass: `cargo run -p xtask -- lint`.
//!
//! Four rules guard the executor's safety story (see DESIGN.md §4.2):
//!
//! * **safety-comment** — every `unsafe` block or impl anywhere under
//!   `crates/` must be preceded (within a few lines) by a `// SAFETY:`
//!   comment stating the invariant it relies on;
//! * **no-panic-in-hot-path** — no `unwrap()` / `expect()` / `panic!` in
//!   the kernel hot paths (`crates/kernels`, `crates/tensor`); kernels are
//!   called per batch and must fail through `Result` at the boundaries,
//!   not abort mid-training; the serving event loop
//!   (`crates/core/src/serve.rs`) and the multi-device block-merge path
//!   (`crates/core/src/multidev.rs`) run per batch too and are held to the
//!   same rule;
//! * **no-unchecked-indexing** — no `get_unchecked` / `get_unchecked_mut`
//!   in `crates/kernels`; slice bounds checks are the last line of defense
//!   under the graph executor's aliased registers;
//! * **lossy-as-cast** — no `as` cast to a narrow numeric type (`u8`/`i8`/
//!   `u16`/`i16`/`u32`/`i32`/`f32`) in the kernel hot paths; `as` truncates
//!   and rounds silently, so each narrowing site must be allowlisted with
//!   a reason or rewritten with `try_from` / explicit clamping.
//!
//! Sanctioned exceptions live in `crates/xtask/lint-allow.txt` as
//! `path-suffix|rule|line-substring` triples; entries are content-keyed so
//! they do not rot with line numbers, and *unused* entries fail the lint
//! so the allowlist stays honest.
//!
//! Scanning is line-based: string-literal and `//`-comment contents are
//! stripped before token matching (single-line literals only — multi-line
//! strings containing rule tokens should be reworded), and everything from
//! a `#[cfg(test)]` line to the end of the file is skipped, matching this
//! workspace's convention of one trailing test module per file. The
//! `crates/xtask` tree itself and `target/` are not scanned.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- lint";

/// Lookback window (in lines) within which a `// SAFETY:` comment must
/// appear before an `unsafe` token — generous enough for a multi-line
/// invariant argument between the `SAFETY:` opener and the `unsafe` site.
const SAFETY_LOOKBACK: usize = 14;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.len() == 1 => lint(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    text: String,
}

/// One sanctioned exception: `path-suffix|rule|line-substring`.
struct AllowEntry {
    path_suffix: String,
    rule: String,
    substring: String,
    used: std::cell::Cell<bool>,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow = load_allowlist(&root);
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for rel in &files {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            violations.push(Violation {
                file: rel.clone(),
                line: 0,
                rule: "io",
                text: "cannot read file".into(),
            });
            continue;
        };
        scanned += 1;
        lint_file(rel, &text, &allow, &mut violations);
    }
    for entry in &allow {
        if !entry.used.get() {
            violations.push(Violation {
                file: "crates/xtask/lint-allow.txt".into(),
                line: 0,
                rule: "stale-allowlist-entry",
                text: format!(
                    "{}|{}|{} matches nothing",
                    entry.path_suffix, entry.rule, entry.substring
                ),
            });
        }
    }

    if violations.is_empty() {
        println!(
            "lint clean: {scanned} files, rules: safety-comment, \
             no-panic-in-hot-path, no-unchecked-indexing, lossy-as-cast \
             ({} allowlisted)",
            allow.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{} {}:{}: {}", v.rule, v.file, v.line, v.text.trim());
        }
        println!("lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn load_allowlist(root: &Path) -> Vec<AllowEntry> {
    let path = root.join("crates/xtask/lint-allow.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '|');
            Some(AllowEntry {
                path_suffix: parts.next()?.trim().to_string(),
                rule: parts.next()?.trim().to_string(),
                substring: parts.next()?.trim().to_string(),
                used: std::cell::Cell::new(false),
            })
        })
        .collect()
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // The lint tool's own source mentions every rule token in
            // strings and docs; scanning it would only test the scanner.
            if name == "target" || path.ends_with("crates/xtask") {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

fn lint_file(rel: &str, text: &str, allow: &[AllowEntry], out: &mut Vec<Violation>) {
    // Kernel hot paths get every rule; the serving event loop and the
    // multi-device block-merge path run per batch too, so they join the
    // no-panic policy (their sanctioned exceptions live in the allowlist).
    let kernel_hot =
        rel.starts_with("crates/kernels/src/") || rel.starts_with("crates/tensor/src/");
    let hot_path =
        kernel_hot || rel == "crates/core/src/serve.rs" || rel == "crates/core/src/multidev.rs";
    let kernels = rel.starts_with("crates/kernels/src/");
    let lines: Vec<&str> = text.lines().collect();

    let mut report = |lineno: usize, rule: &'static str, raw: &str| {
        let waived = allow.iter().any(|e| {
            let hit = rel.ends_with(&e.path_suffix) && e.rule == rule && raw.contains(&e.substring);
            if hit {
                e.used.set(true);
            }
            hit
        });
        if !waived {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule,
                text: raw.to_string(),
            });
        }
    };

    for (idx, &raw) in lines.iter().enumerate() {
        // Test modules sit at the end of each file in this workspace; stop
        // linting at the first test-only region.
        if raw.trim() == "#[cfg(test)]" {
            break;
        }
        let code = code_only(raw);
        let lineno = idx + 1;

        if has_token(&code, "unsafe") {
            let lo = idx.saturating_sub(SAFETY_LOOKBACK);
            let documented = lines[lo..=idx].iter().any(|l| l.contains("SAFETY:"));
            if !documented {
                report(lineno, "safety-comment", raw);
            }
        }
        if hot_path
            && (has_call(&code, "unwrap", '(')
                || has_call(&code, "expect", '(')
                || has_call(&code, "panic", '!'))
        {
            report(lineno, "no-panic-in-hot-path", raw);
        }
        if kernels && (has_token(&code, "get_unchecked") || has_token(&code, "get_unchecked_mut")) {
            report(lineno, "no-unchecked-indexing", raw);
        }
        if kernel_hot && has_lossy_cast(&code) {
            report(lineno, "lossy-as-cast", raw);
        }
    }
}

/// Numeric types an `as` cast can silently truncate or round into.
const NARROW_TYPES: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// `true` when the line contains an `as <narrow numeric type>` cast — a
/// silent truncation/rounding hazard in kernel hot paths. Widening casts
/// (`as usize`, `as u64`, `as f64`) stay legal; sanctioned narrowing casts
/// are allowlisted by content like every other rule.
fn has_lossy_cast(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("as") {
        let i = from + pos;
        let j = i + 2;
        let before = i == 0 || !is_ident_char(bytes[i - 1]);
        let after = j >= bytes.len() || !is_ident_char(bytes[j]);
        if before && after {
            let rest = code[j..].trim_start();
            for ty in NARROW_TYPES {
                if rest.starts_with(ty)
                    && rest
                        .as_bytes()
                        .get(ty.len())
                        .is_none_or(|&b| !is_ident_char(b))
                {
                    return true;
                }
            }
        }
        from = i + 1;
    }
    false
}

/// Strips `//` comments and the contents of single-line string literals,
/// so rule tokens inside either never count as code.
fn code_only(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `true` when `tok` appears as a whole word in `code`.
fn has_token(code: &str, tok: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(tok) {
        let i = from + pos;
        let j = i + tok.len();
        let before = i == 0 || !is_ident_char(bytes[i - 1]);
        let after = j >= bytes.len() || !is_ident_char(bytes[j]);
        if before && after {
            return true;
        }
        from = i + 1;
    }
    false
}

/// `true` when `name` appears as a whole word immediately followed
/// (ignoring spaces) by `next` — e.g. `unwrap` + `(` or `panic` + `!`.
fn has_call(code: &str, name: &str, next: char) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let i = from + pos;
        let j = i + name.len();
        let before = i == 0 || !is_ident_char(bytes[i - 1]);
        if before {
            let rest = code[j..].trim_start();
            if rest.starts_with(next) {
                return true;
            }
        }
        from = i + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        assert_eq!(code_only(r#"let x = "unsafe"; // unsafe"#), "let x = ; ");
        assert_eq!(code_only("unsafe { x }"), "unsafe { x }");
        // A quote char-literal opens "string mode" and swallows the rest of
        // the line — conservative (can only under-report, never false-flag).
        assert_eq!(code_only(r#"s.push('"'); nope"#), "s.push('");
    }

    #[test]
    fn tokens_respect_identifier_boundaries() {
        assert!(has_token("unsafe impl Send for X {}", "unsafe"));
        assert!(!has_token("fn is_unsafe_alias() {}", "unsafe"));
        assert!(!has_token("let unsafety = 1;", "unsafe"));
    }

    #[test]
    fn calls_need_their_follow_character() {
        assert!(has_call("x.unwrap()", "unwrap", '('));
        assert!(has_call("x.unwrap ()", "unwrap", '('));
        assert!(!has_call("let unwrap_count = 1;", "unwrap", '('));
        assert!(has_call("panic!(\"boom\")", "panic", '!'));
        assert!(!has_call("self.panicked", "panic", '!'));
    }

    #[test]
    fn lint_rules_fire_on_synthetic_sources() {
        let mut out = Vec::new();
        let src = "fn f(x: &[f32]) {\n    let v = unsafe { x.get_unchecked(0) };\n}\n";
        lint_file("crates/kernels/src/fake.rs", src, &[], &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"safety-comment"), "{rules:?}");
        assert!(rules.contains(&"no-unchecked-indexing"), "{rules:?}");

        out.clear();
        let src = "// SAFETY: x is valid for one element.\nlet v = unsafe { *p };\n";
        lint_file("crates/core/src/fake.rs", src, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");

        out.clear();
        let src =
            "fn g() { q.expect(\"boom\"); }\n#[cfg(test)]\nmod t { fn h() { q.unwrap(); } }\n";
        lint_file("crates/tensor/src/fake.rs", src, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "no-panic-in-hot-path");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn conv_kernels_are_under_the_hot_path_policy() {
        // The im2col/pool kernels live in crates/kernels and therefore get
        // the full kernel treatment: SAFETY comments, no panics, no
        // unchecked indexing — with no allowlist entries sanctioned.
        let mut out = Vec::new();
        let src = "fn im2col(x: &[f32]) {\n    let v = unsafe { x.get_unchecked(0) };\n    v.expect(\"conv\");\n}\n";
        lint_file("crates/kernels/src/conv.rs", src, &[], &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"safety-comment"), "{rules:?}");
        assert!(rules.contains(&"no-unchecked-indexing"), "{rules:?}");
        assert!(rules.contains(&"no-panic-in-hot-path"), "{rules:?}");
    }

    #[test]
    fn lossy_casts_are_flagged_in_kernel_hot_paths_only() {
        assert!(has_lossy_cast("let y = x as u8;"));
        assert!(has_lossy_cast("let y = (n / d) as i32;"));
        assert!(has_lossy_cast("sum += x as f32"));
        assert!(!has_lossy_cast("let y = x as usize;"));
        assert!(!has_lossy_cast("let y = x as f64;"));
        assert!(!has_lossy_cast("let y = x as u64;"));
        assert!(!has_lossy_cast("let y = alias_cast(x);"));
        assert!(!has_lossy_cast("let y = x as u32x8;"));

        let mut out = Vec::new();
        let src = "fn f(x: usize) -> f32 {\n    x as f32\n}\n";
        lint_file("crates/kernels/src/fake.rs", src, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lossy-as-cast");
        assert_eq!(out[0].line, 2);

        // The no-panic extension files are not kernel hot paths — narrowing
        // casts there stay legal.
        out.clear();
        lint_file("crates/core/src/serve.rs", src, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn serve_and_multidev_join_the_no_panic_policy() {
        let src = "fn g() { q.unwrap(); }\n";
        for hot in ["crates/core/src/serve.rs", "crates/core/src/multidev.rs"] {
            let mut out = Vec::new();
            lint_file(hot, src, &[], &mut out);
            assert_eq!(out.len(), 1, "{hot}: {out:?}");
            assert_eq!(out[0].rule, "no-panic-in-hot-path");
        }
        // The rest of crates/core stays exempt from the panic rule.
        let mut out = Vec::new();
        lint_file("crates/core/src/graph.rs", src, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allowlist_waives_by_content_and_tracks_use() {
        let entry = AllowEntry {
            path_suffix: "tensor/src/fake.rs".into(),
            rule: "no-panic-in-hot-path".into(),
            substring: "boom".into(),
            used: std::cell::Cell::new(false),
        };
        let mut out = Vec::new();
        lint_file(
            "crates/tensor/src/fake.rs",
            "fn g() { q.expect(\"boom\"); }\n",
            std::slice::from_ref(&entry),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        assert!(entry.used.get());
    }
}
