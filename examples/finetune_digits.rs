//! Pre-train a stack, then fine-tune it for digit classification — the
//! downstream task the paper's introduction motivates ("make it easier to
//! learn tasks of interests").
//!
//! ```text
//! cargo run --release --example finetune_digits
//! ```
//!
//! Compares a pre-trained network against the same architecture trained
//! from random initialization with the same fine-tuning budget, and saves
//! the first layer's model + a feature-grid PGM to the temp directory.

use micdnn::train::TrainConfig;
use micdnn::{
    feature_grid, save_autoencoder_file, write_pgm, ExecCtx, FineTuneNet, OptLevel,
    StackedAutoencoder,
};
use micdnn_data::{Dataset, DigitGenerator};

fn main() {
    let side = 14;
    let n_train = 1200;
    let classes = 10;

    println!("generating {n_train} digits ({side}x{side}, {classes} classes)...");
    let mut gen = DigitGenerator::new(side, 3);
    let mut data = Dataset::new(gen.matrix(n_train));
    data.normalize();
    let labels: Vec<usize> = (0..n_train).map(|i| i % classes).collect();

    let sizes = [side * side, 96, 48];
    let ctx = ExecCtx::native(OptLevel::Improved, 5);
    let tc = TrainConfig {
        learning_rate: 0.3,
        batch_size: 60,
        chunk_rows: 300,
        ..TrainConfig::default()
    };

    println!("pre-training stack {sizes:?} (12 passes/layer)...");
    let t0 = std::time::Instant::now();
    let mut stack = StackedAutoencoder::with_default_config(&sizes, 7);
    stack
        .pretrain(&ctx, &data, &tc, 12)
        .expect("pretraining failed");
    println!("pre-training took {:.2?}", t0.elapsed());

    let epochs = 12;
    println!("\nfine-tuning with a softmax head ({epochs} epochs)...");
    let mut pretrained = FineTuneNet::from_stack(&stack, classes, 9);
    let hist_pre = pretrained.fit(&ctx, data.matrix().view(), &labels, 60, 0.5, epochs);
    let acc_pre = pretrained.accuracy(&ctx, data.matrix().view(), &labels);

    println!("training the same architecture from random init ({epochs} epochs)...");
    let mut random = FineTuneNet::random(&sizes, classes, 9);
    let hist_rand = random.fit(&ctx, data.matrix().view(), &labels, 60, 0.5, epochs);
    let acc_rand = random.accuracy(&ctx, data.matrix().view(), &labels);

    println!("\n                     cross-entropy            train accuracy");
    println!(
        "pre-trained:     {:.4} -> {:.4}            {:.1}%",
        hist_pre[0],
        hist_pre.last().unwrap(),
        100.0 * acc_pre
    );
    println!(
        "random init:     {:.4} -> {:.4}            {:.1}%",
        hist_rand[0],
        hist_rand.last().unwrap(),
        100.0 * acc_rand
    );
    println!("(chance level: {:.1}%)", 100.0 / classes as f64);

    // Persist artifacts.
    let dir = std::env::temp_dir();
    let model_path = dir.join("micdnn-layer1.bin");
    let pgm_path = dir.join("micdnn-features.pgm");
    save_autoencoder_file(&stack.layers()[0], &model_path).expect("save failed");
    let grid = feature_grid(&stack.layers()[0], 48, side, 8);
    write_pgm(&pgm_path, &grid).expect("pgm failed");
    println!(
        "\nsaved layer-1 model to {} and feature grid to {}",
        model_path.display(),
        pgm_path.display()
    );
}
