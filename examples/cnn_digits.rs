//! A conv+pool CNN on the digits stream — the first non-paper workload
//! built entirely through the layer IR (`micdnn::layers`): im2col-over-GEMM
//! `Conv2d` -> `MaxPool2d` -> `Dense` -> softmax, composed by the same
//! `StackBuilder` that now emits the AE / CD-k / fine-tune step graphs.
//!
//! ```text
//! cargo run --release --example cnn_digits
//! ```
//!
//! Trains twice — once on the serial declaration-order path, once through
//! the wave-scheduled task graph — and checks the two land on bit-identical
//! parameters, then reports train accuracy against the stream labels.

use micdnn::{build_cnn_graph, CnnConfig, CnnNet, ExecCtx, OptLevel};
use micdnn_data::{Dataset, DigitGenerator};

fn main() {
    let side = 14;
    let n_train = 600;

    // The digits generator renders digit i % 10 on row i, so labels are a
    // pure function of row order — the same scheme the CLI's cnn stream
    // training and its checkpoint cursor rely on.
    println!("generating {n_train} digits ({side}x{side})...");
    let mut gen = DigitGenerator::new(side, 3);
    let mut data = Dataset::new(gen.matrix(n_train));
    data.normalize();
    let labels: Vec<usize> = (0..n_train).map(|i| i % 10).collect();

    // conv 5x5 x6 channels -> 2x2 max-pool -> 48 dense -> 10-way softmax.
    let cfg = CnnConfig::digits(side);
    println!(
        "network: {}x{} input, {} conv channels (k={}), pool {}, {} hidden, {} classes ({} params)",
        side,
        side,
        cfg.channels,
        cfg.kernel,
        cfg.pool,
        cfg.hidden,
        cfg.n_classes,
        cfg.param_count()
    );

    // The recipe's graph is statically verified before anything runs.
    let batch = 50;
    let report = build_cnn_graph(cfg, batch).verify();
    assert!(report.is_clean(), "{report}");
    println!("task graph verifies clean: {report}");

    let ctx = ExecCtx::native(OptLevel::Improved, 5);
    let epochs = 30;

    println!("\ntraining {epochs} epochs on the serial declaration-order path...");
    let t0 = std::time::Instant::now();
    let mut serial = CnnNet::new(cfg, 11);
    let hist = serial.fit(&ctx, data.matrix().view(), &labels, batch, 0.4, epochs);
    println!("serial path took {:.2?}", t0.elapsed());

    println!("training the same net through the wave-scheduled graph...");
    let t1 = std::time::Instant::now();
    let mut waved = CnnNet::new(cfg, 11).with_graph_schedule();
    let hist_w = waved.fit(&ctx, data.matrix().view(), &labels, batch, 0.4, epochs);
    println!("graph path took {:.2?}", t1.elapsed());

    // Scheduling is never a numerics decision: both paths must agree bitwise.
    assert_eq!(hist, hist_w, "loss trajectories diverged");
    assert_eq!(serial.conv_w.as_slice(), waved.conv_w.as_slice());
    assert_eq!(serial.dense_w.as_slice(), waved.dense_w.as_slice());
    assert_eq!(serial.softmax.w.as_slice(), waved.softmax.w.as_slice());
    println!("serial and wave-scheduled parameters are bit-identical");

    let acc = serial.accuracy(&ctx, data.matrix().view(), &labels);
    println!(
        "\ncross-entropy {:.4} -> {:.4}, train accuracy {:.1}% (chance {:.1}%)",
        hist[0],
        hist.last().unwrap(),
        100.0 * acc,
        100.0 / cfg.n_classes as f64
    );
}
