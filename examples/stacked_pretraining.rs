//! Layer-wise pre-training of a deep stack — the paper's Table I workload
//! at laptop scale, run both natively and on the simulated Xeon Phi.
//!
//! ```text
//! cargo run --release --example stacked_pretraining
//! ```
//!
//! Trains a 256-128-64-32 stacked autoencoder on natural-image patches
//! (the paper's stack is 1024-512-256-128), then repeats one layer across
//! the four optimization rungs on the modeled coprocessor to show the
//! Table I ladder in miniature.

use micdnn::train::TrainConfig;
use micdnn::{ExecCtx, OptLevel, StackedAutoencoder};
use micdnn_data::{Dataset, PatchGenerator};
use micdnn_sim::Platform;

fn main() {
    let sizes = [256usize, 128, 64, 32];
    let n_examples = 1500;

    println!("sampling {n_examples} natural-image patches (16x16)...");
    let mut gen = PatchGenerator::new(16, 11);
    let mut data = Dataset::new(gen.matrix(n_examples));
    data.normalize();

    let cfg = TrainConfig {
        learning_rate: 0.3,
        batch_size: 100,
        chunk_rows: 500,
        history_every: 10,
        ..TrainConfig::default()
    };

    println!("pre-training stack {sizes:?} (greedy layer-wise, 20 passes/layer)...");
    let ctx = ExecCtx::native(OptLevel::Improved, 5);
    let mut stack = StackedAutoencoder::with_default_config(&sizes, 9);
    let t0 = std::time::Instant::now();
    let reports = stack
        .pretrain(&ctx, &data, &cfg, 20)
        .expect("pretraining failed");
    println!("done in {:.2?} wall-clock\n", t0.elapsed());

    for (i, lr) in reports.iter().enumerate() {
        println!(
            "layer {} ({:>4} -> {:<4}): recon {:.5} -> {:.5}",
            i + 1,
            lr.shape.0,
            lr.shape.1,
            lr.report.initial_recon(),
            lr.report.final_recon()
        );
    }

    let code = stack.encode(&ctx, data.matrix().view());
    println!(
        "\ndeep code: {} examples x {} dims (from {} input dims)",
        code.rows(),
        code.cols(),
        sizes[0]
    );

    // Miniature Table I: the same first layer trained at each optimization
    // rung on the simulated Phi.
    println!("\noptimization ladder on the simulated Xeon Phi (layer 1 only, 3 passes):");
    println!("{:<26}{:>16}", "rung", "simulated time");
    for lvl in OptLevel::ladder() {
        let ctx = ExecCtx::simulated(lvl, Platform::xeon_phi(), 5);
        let mut stack = StackedAutoencoder::with_default_config(&sizes[..2], 9);
        let quick = TrainConfig {
            history_every: 1000,
            ..cfg.clone()
        };
        stack
            .pretrain(&ctx, &data, &quick, 3)
            .expect("simulated pretraining failed");
        println!("{:<26}{:>14.2} s", lvl.label(), ctx.sim_time());
    }
    println!("\n(the full-scale ladder is Table I — run `repro table1`)");
}
