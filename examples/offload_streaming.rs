//! The offload pipeline end-to-end: a loading thread streams generated
//! chunks to the modeled coprocessor while training consumes them, with
//! and without double buffering (paper §IV.A / Fig. 5).
//!
//! ```text
//! cargo run --release --example offload_streaming
//! ```

use micdnn::train::{train_stream, AeModel, TrainConfig};
use micdnn::{AeConfig, ExecCtx, OptLevel, SparseAutoencoder};
use micdnn_data::{Dataset, GeneratorSource, PatchGenerator};
use micdnn_sim::{Link, Platform};

fn main() {
    let dim = 144; // 12x12 patches
    let chunk_rows = 500;
    let chunks = 12;

    // A generator source materializes each chunk lazily on the loading
    // thread — this is how paper-scale (multi-GB) datasets stream without
    // living in host memory.
    let make_source = || {
        GeneratorSource::new(
            move |i| {
                // Seed per chunk index so the stream is reproducible, but
                // keep overlap between chunks so training sees a coherent
                // distribution.
                let mut gen = PatchGenerator::new(12, 1000 + (i % 3) as u64);
                let mut ds = Dataset::new(gen.matrix(chunk_rows));
                ds.normalize();
                ds.into_matrix()
            },
            chunk_rows,
            chunks,
        )
    };

    let cfg = AeConfig::new(dim, 64);
    println!("streaming {chunks} chunks x {chunk_rows} patches through the offload pipeline\n");

    for (label, double_buffered) in [
        ("WITHOUT loading thread", false),
        ("WITH loading thread", true),
    ] {
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 8);
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 2));
        let tc = TrainConfig {
            learning_rate: 0.2,
            batch_size: 100,
            chunk_rows,
            buffers: 2,
            double_buffered,
            // The paper's measured host pipeline: ~12.6 MB/s effective.
            link: Link::paper_measured(),
            history_every: 5,
            ..TrainConfig::default()
        };
        let report = train_stream(&mut model, &ctx, make_source(), &tc).expect("training failed");
        let st = report.stream;
        println!("{label}:");
        println!(
            "  simulated total {:.2} s  (transfer {:.2} s, stalled {:.2} s, {:.0}% hidden)",
            report.sim_total_secs,
            st.transfer_secs,
            st.stall_secs,
            100.0 * st.hidden_fraction()
        );
        println!(
            "  trained {} batches, recon {:.5} -> {:.5}\n",
            report.batches,
            report.initial_recon(),
            report.final_recon()
        );
    }

    println!("(the paper measures 13 s transfer vs 68 s training per chunk — ~17%\n overhead — and hides it with exactly this double-buffered loading thread)");
}
