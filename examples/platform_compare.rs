//! Compare a training workload across every modeled platform and
//! optimization rung — the paper's whole evaluation in one table.
//!
//! ```text
//! cargo run --release --example platform_compare [visible hidden examples batch]
//! ```
//!
//! Defaults to the paper's 1024x4096 network, 100k examples, batch 1000.

use micdnn::analytic::{estimate, Algo, Workload};
use micdnn::exec::OptLevel;
use micdnn_sim::{Link, Platform};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let get = |i: usize, default: usize| args.get(i).copied().unwrap_or(default);
    let w = Workload {
        algo: Algo::Autoencoder,
        n_visible: get(0, 1024),
        n_hidden: get(1, 4096),
        examples: get(2, 100_000),
        batch: get(3, 1000),
        chunk_rows: 10_000,
        passes: 1,
    };
    println!(
        "Sparse Autoencoder {}x{}, {} examples, batch {}\n",
        w.n_visible, w.n_hidden, w.examples, w.batch
    );

    println!("-- platforms (fully-optimized code) --");
    let platforms = [
        (Platform::xeon_phi(), OptLevel::Improved),
        (Platform::xeon_phi_cores(30), OptLevel::Improved),
        (Platform::cpu_socket(), OptLevel::Improved),
        (Platform::cpu_single_core(), OptLevel::Improved),
        (Platform::matlab_host(), OptLevel::SequentialBlas),
    ];
    let mut fastest = f64::INFINITY;
    let mut results = Vec::new();
    for (platform, level) in platforms {
        let e = estimate(level, platform.clone(), Link::pcie_gen2(), true, &w);
        fastest = fastest.min(e.total_secs);
        results.push((platform.label.clone(), e.total_secs));
    }
    for (label, secs) in &results {
        println!("{label:<26}{secs:>12.1} s   ({:.1}x)", secs / fastest);
    }

    println!("\n-- optimization ladder on the Xeon Phi --");
    for level in OptLevel::ladder() {
        let e = estimate(level, Platform::xeon_phi(), Link::pcie_gen2(), true, &w);
        println!("{:<26}{:>12.1} s", level.label(), e.total_secs);
    }

    println!("\n-- transfer accounting on the Phi (paper-measured host pipeline) --");
    for (label, db) in [("double-buffered", true), ("blocking transfers", false)] {
        let e = estimate(
            OptLevel::Improved,
            Platform::xeon_phi(),
            Link::paper_measured(),
            db,
            &w,
        );
        println!(
            "{label:<26}{:>12.1} s   (stalled {:.1} s of {:.1} s transfer)",
            e.total_secs, e.stall_secs, e.transfer_secs
        );
    }
}
