//! Quickstart: train a sparse autoencoder on synthetic handwritten digits.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core loop of the reproduced paper: generate data,
//! normalize it into sigmoid range, train with mini-batch SGD through the
//! chunked loading pipeline, and inspect what the hidden layer learned.

use micdnn::train::{train_dataset, AeModel, TrainConfig};
use micdnn::{AeConfig, ExecCtx, OptLevel, SparseAutoencoder};
use micdnn_data::{Dataset, DigitGenerator};

fn main() {
    let side = 16; // 16x16 digit images -> 256 visible units
    let n_examples = 2000;
    let n_hidden = 100;

    println!("generating {n_examples} synthetic digits ({side}x{side})...");
    let mut gen = DigitGenerator::new(side, 7);
    let mut data = Dataset::new(gen.matrix(n_examples));
    data.normalize();
    data.shuffle(1);

    let cfg = AeConfig::new(side * side, n_hidden);
    println!(
        "sparse autoencoder {} -> {} ({} parameters), rho={}, beta={}, lambda={}",
        cfg.n_visible,
        cfg.n_hidden,
        cfg.param_count(),
        cfg.sparsity_target,
        cfg.sparsity_weight,
        cfg.weight_decay
    );

    // The paper's best rung: threaded + blocked GEMM + fused loops.
    let ctx = ExecCtx::native(OptLevel::Improved, 42);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 3));

    let train_cfg = TrainConfig {
        learning_rate: 0.3,
        batch_size: 100,
        chunk_rows: 500,
        history_every: 20,
        ..TrainConfig::default()
    };
    let passes = 30;
    let t0 = std::time::Instant::now();
    let report =
        train_dataset(&mut model, &ctx, &data, &train_cfg, passes).expect("training failed");
    let wall = t0.elapsed();

    println!(
        "\ntrained {} batches ({} examples) in {:.2?} wall-clock",
        report.batches, report.examples, wall
    );
    println!("reconstruction error trajectory (sampled):");
    for (i, e) in report.recon_history.iter().enumerate() {
        if i % 5 == 0 || i + 1 == report.recon_history.len() {
            println!("  sample {:>4}: {:.5}", i, e);
        }
    }
    println!(
        "error: {:.5} -> {:.5}  ({:.1}x reduction)",
        report.initial_recon(),
        report.final_recon(),
        report.initial_recon() / report.final_recon()
    );

    // Show a learned feature (one hidden unit's weights) as ASCII art.
    let ae = model.into_inner();
    println!("\nlearned feature of hidden unit 0 ({side}x{side} weights):");
    let row = ae.w1.row(0);
    let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
    for y in 0..side {
        let line: String = (0..side)
            .map(|x| {
                let v = row[y * side + x] / max;
                match v {
                    v if v > 0.5 => '#',
                    v if v > 0.15 => '+',
                    v if v < -0.5 => '=',
                    v if v < -0.15 => '-',
                    _ => '.',
                }
            })
            .collect();
        println!("  {line}");
    }

    // Round-trip a digit.
    let x = data.batch(0, 1);
    let code = ae.encode(&ctx, x);
    let active = code.as_slice().iter().filter(|&&v| v > 0.5).count();
    println!(
        "\nexample 0 encodes to {} hidden activations ({active}/{} strongly active)",
        code.cols(),
        code.cols()
    );
}
