//! Deep Belief Network pre-training on binarized digits, with the CD-1
//! dependency graph (paper Fig. 6) switched on.
//!
//! ```text
//! cargo run --release --example dbn_digits
//! ```
//!
//! Shows the RBM side of the paper: greedy stacking, reconstruction-error
//! convergence, the free-energy gap between data and noise, and the
//! simulated gain of scheduling one CD step through the dependency graph.

use micdnn::cd_step_graph;
use micdnn::train::TrainConfig;
use micdnn::{DeepBeliefNet, ExecCtx, OptLevel, Rbm, RbmConfig, RbmScratch};
use micdnn_data::{Dataset, DigitGenerator};
use micdnn_sim::Platform;
use micdnn_tensor::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let side = 14;
    let n_examples = 1200;

    println!("generating {n_examples} binarized digits ({side}x{side})...");
    let mut gen = DigitGenerator::new(side, 21);
    let mut data = Dataset::new(gen.matrix(n_examples));
    data.binarize(0.4);

    let sizes = [side * side, 120, 60];
    println!("pre-training DBN {sizes:?} with CD-1 (15 passes/layer)...");
    let ctx = ExecCtx::native(OptLevel::Improved, 33);
    let mut dbn = DeepBeliefNet::new(&sizes, 17);
    let cfg = TrainConfig {
        learning_rate: 0.1,
        batch_size: 50,
        chunk_rows: 300,
        history_every: 25,
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let reports = dbn
        .pretrain(&ctx, &data, &cfg, 15)
        .expect("pretraining failed");
    println!("done in {:.2?} wall-clock\n", t0.elapsed());

    for (i, lr) in reports.iter().enumerate() {
        println!(
            "RBM {} ({:>4} -> {:<4}): recon {:.4} -> {:.4}",
            i + 1,
            lr.shape.0,
            lr.shape.1,
            lr.report.initial_recon(),
            lr.report.final_recon()
        );
    }

    // Free-energy gap: a trained RBM should prefer data over noise.
    let first = &dbn.layers()[0];
    let mut rng = StdRng::seed_from_u64(99);
    let noise = Mat::from_fn(
        200,
        sizes[0],
        |_, _| if rng.gen_bool(0.5) { 1.0 } else { 0.0 },
    );
    let fe_data = first.free_energy(&ctx, data.batch(0, 200));
    let fe_noise = first.free_energy(&ctx, noise.view());
    println!(
        "\nfree energy (layer 1): data {fe_data:.2} vs random noise {fe_noise:.2}  (gap {:.2})",
        fe_noise - fe_data
    );

    // Fig. 6 in action: one CD-1 step scheduled through the dependency
    // graph on the simulated coprocessor.
    println!("\nscheduling one CD-1 step via the Fig. 6 dependency graph (simulated Phi):");
    let cfg1 = RbmConfig::new(512, 1024);
    let mut rbm = Rbm::new(cfg1, 3);
    let sim_ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 4);
    let mut scratch = RbmScratch::new(&cfg1, 200);
    let batch = Mat::from_fn(200, 512, |r, c| ((r + c) % 2) as f32);
    let (_, run) = cd_step_graph(&mut rbm, &sim_ctx, batch.view(), &mut scratch, 0.1);
    println!(
        "  serial schedule: {:.2} ms   critical path: {:.2} ms   speedup {:.2}x",
        run.serial_time * 1e3,
        run.critical_path * 1e3,
        run.speedup()
    );
}
