//! Hostile-input and crash-safety tests for the persistence layer.
//!
//! Model and checkpoint files are the one thing a long run leaves behind,
//! so the loaders must survive anything the filesystem can throw at them:
//! truncation at every byte, arbitrary single-byte corruption, dimension
//! fields rewritten to absurd values. The contract is `InvalidData` (or
//! `UnexpectedEof`) — never a panic, never an attempt to allocate a
//! corrupt header's worth of memory.
//!
//! The atomic-write contract is exercised the same way: a writer that
//! fails mid-save must leave the previous file byte-for-byte intact and
//! clean up its temporary.

use micdnn::model_io::{load_autoencoder, load_rbm, save_autoencoder, save_rbm};
use micdnn::train::{AeModel, RbmModel};
use micdnn::{
    atomic_write, load_checkpoint, load_checkpoint_file, save_autoencoder_file, save_checkpoint,
    save_checkpoint_file, AeConfig, Optimizer, Rbm, RbmConfig, Rule, Schedule, SparseAutoencoder,
    TrainProgress,
};
use std::io::{self, Write};
use std::path::PathBuf;

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("micdnn-persist-{}-{name}", std::process::id()))
}

fn sample_ae() -> SparseAutoencoder {
    SparseAutoencoder::new(AeConfig::new(12, 7), 3)
}

fn sample_rbm() -> Rbm {
    Rbm::new(RbmConfig::new(10, 6).with_cd_steps(2), 7)
}

fn sample_checkpoint_bytes() -> Vec<u8> {
    let cfg = AeConfig::new(8, 5);
    let opt = Optimizer::new(
        Rule::Momentum { mu: 0.9 },
        Schedule::Step {
            base: 0.2,
            factor: 0.5,
            every: 100,
        },
        &SparseAutoencoder::optimizer_slots(&cfg),
    );
    let model = AeModel::new(SparseAutoencoder::new(cfg, 3)).with_optimizer(opt);
    let progress = TrainProgress {
        layer: 1,
        epoch: 2,
        batches: 34,
        examples: 850,
    };
    let mut buf = Vec::new();
    save_checkpoint(&mut buf, &model, 42, 17, &progress).unwrap();
    buf
}

// ---- corruption never panics --------------------------------------------

#[test]
fn ae_file_survives_any_single_byte_flip() {
    let mut clean = Vec::new();
    save_autoencoder(&sample_ae(), &mut clean).unwrap();
    for i in 0..clean.len() {
        let mut buf = clean.clone();
        buf[i] ^= 0xFF;
        // Ok (a flipped weight byte is still a valid file) or InvalidData /
        // UnexpectedEof — but never a panic and never a huge allocation.
        let _ = load_autoencoder(&mut buf.as_slice());
    }
}

#[test]
fn rbm_file_survives_any_single_byte_flip() {
    let mut clean = Vec::new();
    save_rbm(&sample_rbm(), &mut clean).unwrap();
    for i in 0..clean.len() {
        let mut buf = clean.clone();
        buf[i] ^= 0xFF;
        let _ = load_rbm(&mut buf.as_slice());
    }
}

#[test]
fn checkpoint_survives_any_single_byte_flip() {
    let clean = sample_checkpoint_bytes();
    for i in 0..clean.len() {
        let mut buf = clean.clone();
        buf[i] ^= 0xFF;
        let _ = load_checkpoint(&mut buf.as_slice());
    }
}

#[test]
fn every_truncation_is_rejected() {
    let mut ae = Vec::new();
    save_autoencoder(&sample_ae(), &mut ae).unwrap();
    for len in 0..ae.len() {
        assert!(
            load_autoencoder(&mut &ae[..len]).is_err(),
            "truncation to {len} bytes loaded"
        );
    }
    let ckpt = sample_checkpoint_bytes();
    for len in 0..ckpt.len() {
        assert!(
            load_checkpoint(&mut &ckpt[..len]).is_err(),
            "checkpoint truncated to {len} bytes loaded"
        );
    }
}

// ---- header-derived sizes are capped before allocation ------------------

#[test]
fn absurd_dimensions_rejected_without_allocating() {
    // MAGIC + AE tag + n_visible = u64::MAX: must fail on the dimension
    // check, not by trying to build the tensor.
    let mut buf = b"MICDNN01\x01".to_vec();
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    buf.extend_from_slice(&7u64.to_le_bytes());
    let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn oversized_tensor_product_rejected() {
    // Each dimension individually passes the per-dim cap, but their
    // product exceeds the element cap.
    let big = 1u64 << 24;
    let mut buf = b"MICDNN01\x01".to_vec();
    buf.extend_from_slice(&big.to_le_bytes());
    buf.extend_from_slice(&big.to_le_bytes());
    let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("cap"), "{err}");
}

#[test]
fn corrupt_tensor_length_rejected_before_allocation() {
    let mut buf = Vec::new();
    save_autoencoder(&sample_ae(), &mut buf).unwrap();
    // First tensor's length prefix: magic(8) + tag(1) + dims(16) +
    // f32 config(12) + mat rows/cols(16).
    let off = 8 + 1 + 16 + 12 + 16;
    buf[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = load_autoencoder(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("length"), "{err}");
}

#[test]
fn absurd_cd_steps_rejected() {
    let mut buf = b"MICDNN01\x02".to_vec();
    buf.extend_from_slice(&10u64.to_le_bytes());
    buf.extend_from_slice(&6u64.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    let err = load_rbm(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("cd_steps"), "{err}");
}

// ---- type and header confusion ------------------------------------------

#[test]
fn bad_magic_rejected_everywhere() {
    let buf = b"NOTAMODELxxxxxxxxxxxxxxx".to_vec();
    assert!(load_autoencoder(&mut buf.as_slice()).is_err());
    assert!(load_rbm(&mut buf.as_slice()).is_err());
    let err = load_checkpoint(&mut buf.as_slice()).unwrap_err();
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn model_and_checkpoint_tags_do_not_cross_load() {
    let mut ae = Vec::new();
    save_autoencoder(&sample_ae(), &mut ae).unwrap();
    assert!(load_checkpoint(&mut ae.as_slice()).is_err());
    assert!(load_rbm(&mut ae.as_slice()).is_err());
    let ckpt = sample_checkpoint_bytes();
    assert!(load_autoencoder(&mut ckpt.as_slice()).is_err());
}

#[test]
fn checkpoint_with_unknown_embedded_model_rejected() {
    let mut buf = sample_checkpoint_bytes();
    // Embedded model tag: outer header (9) + version/seed/cursor/progress
    // (7 * 8) + embedded magic (8).
    let off = 9 + 7 * 8 + 8;
    buf[off] = 9;
    let err = load_checkpoint(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("model tag"), "{err}");
}

// ---- atomic writes --------------------------------------------------------

/// A writer that forwards `limit` bytes and then fails, standing in for a
/// full disk or a killed process.
struct FailAfter<'a> {
    inner: &'a mut dyn Write,
    left: usize,
}

impl Write for FailAfter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.left == 0 {
            return Err(io::Error::other("injected write failure"));
        }
        let n = buf.len().min(self.left);
        self.left -= n;
        self.inner.write(&buf[..n])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[test]
fn failed_save_leaves_previous_model_intact() {
    let path = scratch_path("atomic-model.bin");
    let _ = std::fs::remove_file(&path);

    let original = sample_ae();
    save_autoencoder_file(&original, &path).unwrap();
    let before = std::fs::read(&path).unwrap();

    // A second save dies partway through serializing a different model.
    let other = SparseAutoencoder::new(AeConfig::new(12, 7), 99);
    for limit in [0, 1, 8, 64, 200] {
        let err = atomic_write(&path, |w| {
            let mut failing = FailAfter {
                inner: w,
                left: limit,
            };
            save_autoencoder(&other, &mut failing)
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "injected write failure");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "failed save at limit {limit} damaged the previous file"
        );
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !PathBuf::from(tmp).exists(),
            "temporary left behind at limit {limit}"
        );
    }

    // The surviving file still loads to the original weights.
    let back = micdnn::load_autoencoder_file(&path).unwrap();
    assert_eq!(back.w1.as_slice(), original.w1.as_slice());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_checkpoint_write_leaves_previous_checkpoint_loadable() {
    let dir = scratch_path("atomic-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let file = dir.join("checkpoint.mic");

    let model = AeModel::new(sample_ae());
    let progress = TrainProgress {
        layer: 0,
        epoch: 4,
        batches: 32,
        examples: 800,
    };
    save_checkpoint_file(&file, &model, 7, 19, &progress).unwrap();

    let err = atomic_write(&file, |w| {
        let mut failing = FailAfter { inner: w, left: 40 };
        save_checkpoint(&mut failing, &model, 8, 20, &TrainProgress::default())
    })
    .unwrap_err();
    assert_eq!(err.to_string(), "injected write failure");

    let back = load_checkpoint_file(&file).unwrap();
    assert_eq!(back.rng_seed, 7);
    assert_eq!(back.rng_cursor, 19);
    assert_eq!(back.progress, progress);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn successful_save_leaves_no_temporary() {
    let path = scratch_path("atomic-clean.bin");
    let _ = std::fs::remove_file(&path);
    save_autoencoder_file(&sample_ae(), &path).unwrap();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    assert!(!PathBuf::from(tmp).exists());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_file_round_trips_momentum_rbm() {
    let dir = scratch_path("rbm-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let file = dir.join("checkpoint.mic");
    let model = RbmModel::new(sample_rbm());
    let progress = TrainProgress {
        layer: 2,
        epoch: 1,
        batches: 9,
        examples: 225,
    };
    save_checkpoint_file(&file, &model, 3, 5, &progress).unwrap();
    let back = load_checkpoint_file(&file).unwrap();
    assert_eq!(back.progress, progress);
    let restored = back.into_rbm().expect("RBM checkpoint");
    assert_eq!(restored.rbm.w.as_slice(), model.rbm.w.as_slice());
    assert_eq!(restored.rbm.config().cd_steps, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
