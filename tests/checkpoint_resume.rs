//! Pinned bit-identical checkpoint/resume tests.
//!
//! The contract under test: training 2N epochs straight produces *exactly*
//! the same parameters as training N epochs, checkpointing to disk,
//! rebuilding everything from nothing but the checkpoint file (model,
//! optimizer/momentum state, RNG cursor, progress) and resuming for N
//! more. Bit-identical, for both building blocks:
//!
//! * the sparse autoencoder (plain SGD + KL sparsity, and a momentum
//!   optimizer whose velocity slots and schedule step must survive),
//! * the RBM (CD-1 with classical momentum — its Gibbs sampling draws from
//!   the context's counter-based streams, so the restored `(seed, cursor)`
//!   is load-bearing, not just the weights).
//!
//! A separate test crashes a run mid-epoch through a loader fault and
//! resumes from the best-effort checkpoint the trainer leaves behind.

use micdnn::train::{
    train_dataset, train_dataset_resume, train_stream, AeModel, RbmModel, TrainConfig, TrainError,
};
use micdnn::{
    load_checkpoint_file, AeConfig, CheckpointPolicy, CnnConfig, CnnModel, CnnNet, DataParallelRbm,
    ExecCtx, MultiDevConfig, OptLevel, Optimizer, Rbm, RbmConfig, Recoverable, Rule, Schedule,
    SparseAutoencoder, StackedAutoencoder,
};
use micdnn_data::Dataset;
use micdnn_tensor::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn toy_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let protos: Vec<Vec<f32>> = (0..4)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.1..0.9)).collect())
        .collect();
    Dataset::new(Mat::from_fn(n, dim, |r, c| {
        (protos[r % 4][c] + rng.gen_range(-0.05..0.05)).clamp(0.05, 0.95)
    }))
}

/// A fresh scratch directory for one test's checkpoint files.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("micdnn-ckpt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config() -> TrainConfig {
    TrainConfig {
        batch_size: 25,
        chunk_rows: 50,
        learning_rate: 0.2,
        history_every: 7,
        ..TrainConfig::default()
    }
}

#[test]
fn ae_sgd_resume_is_bit_identical() {
    let ds = toy_dataset(200, 16, 3);
    let cfg = base_config();
    let make_model = || AeModel::new(SparseAutoencoder::new(AeConfig::new(16, 8), 11));

    // The uninterrupted reference: 6 epochs straight.
    let mut straight = make_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 5);
    train_dataset(&mut straight, &ctx, &ds, &cfg, 6).unwrap();

    // Leg 1: 3 epochs, checkpointing periodically and at the end.
    let dir = scratch_dir("ae-sgd");
    let policy = CheckpointPolicy::new(&dir, 5);
    let ckpt_cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..cfg.clone()
    };
    {
        let mut first = make_model();
        let ctx1 = ExecCtx::native(OptLevel::Improved, 5);
        train_dataset(&mut first, &ctx1, &ds, &ckpt_cfg, 3).unwrap();
        // `first` and `ctx1` drop here: only the file crosses the boundary.
    }

    // Leg 2: rebuild everything from the checkpoint file alone.
    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    assert_eq!(ckpt.progress.epoch, 3);
    assert_eq!(ckpt.progress.batches, 3 * 8);
    assert_eq!(ckpt.progress.examples, 3 * 200);
    let ctx2 = ExecCtx::native(OptLevel::Improved, 999); // overwritten by restore
    ckpt.restore_rng(&ctx2);
    let progress = ckpt.progress;
    let mut resumed = ckpt.into_ae().expect("AE checkpoint");
    let report = train_dataset_resume(&mut resumed, &ctx2, &ds, &ckpt_cfg, 6, &progress).unwrap();
    assert_eq!(
        report.batches,
        3 * 8,
        "resume must train only the second leg"
    );

    assert_eq!(straight.ae.w1.as_slice(), resumed.ae.w1.as_slice());
    assert_eq!(straight.ae.w2.as_slice(), resumed.ae.w2.as_slice());
    assert_eq!(straight.ae.b1, resumed.ae.b1);
    assert_eq!(straight.ae.b2, resumed.ae.b2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ae_momentum_optimizer_resume_is_bit_identical() {
    let ds = toy_dataset(200, 16, 4);
    let cfg = base_config();
    let ae_cfg = AeConfig::new(16, 8);
    let make_model = || {
        let opt = Optimizer::new(
            Rule::Momentum { mu: 0.8 },
            Schedule::Exponential {
                base: 0.2,
                gamma: 0.999,
            },
            &SparseAutoencoder::optimizer_slots(&ae_cfg),
        );
        AeModel::new(SparseAutoencoder::new(ae_cfg, 13)).with_optimizer(opt)
    };

    let mut straight = make_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 6);
    train_dataset(&mut straight, &ctx, &ds, &cfg, 6).unwrap();

    let dir = scratch_dir("ae-momentum");
    let policy = CheckpointPolicy::new(&dir, 0); // end-of-run checkpoint only
    let ckpt_cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..cfg.clone()
    };
    {
        let mut first = make_model();
        let ctx1 = ExecCtx::native(OptLevel::Improved, 6);
        train_dataset(&mut first, &ctx1, &ds, &ckpt_cfg, 3).unwrap();
    }

    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    let ctx2 = ExecCtx::native(OptLevel::Improved, 6);
    ckpt.restore_rng(&ctx2);
    let progress = ckpt.progress;
    let mut resumed = ckpt.into_ae().expect("AE checkpoint");
    // The velocity slots and the schedule's step counter came off disk; a
    // zeroed or restarted optimizer would diverge on the very first batch.
    train_dataset_resume(&mut resumed, &ctx2, &ds, &ckpt_cfg, 6, &progress).unwrap();

    assert_eq!(straight.ae.w1.as_slice(), resumed.ae.w1.as_slice());
    assert_eq!(straight.ae.w2.as_slice(), resumed.ae.w2.as_slice());
    assert_eq!(straight.ae.b1, resumed.ae.b1);
    assert_eq!(straight.ae.b2, resumed.ae.b2);
    let (a, b) = (
        straight.optimizer().expect("optimizer"),
        resumed.optimizer().expect("optimizer"),
    );
    assert_eq!(a.steps(), b.steps());
    assert_eq!(a.state_slots(), b.state_slots());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rbm_momentum_resume_is_bit_identical() {
    let mut ds = toy_dataset(200, 12, 7);
    ds.binarize(0.5);
    let cfg = TrainConfig {
        learning_rate: 0.1,
        ..base_config()
    };
    let rbm_cfg = RbmConfig::new(12, 9);
    let make_model = || RbmModel::new(Rbm::new(rbm_cfg, 9)).with_momentum(0.6);

    let mut straight = make_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 21);
    train_dataset(&mut straight, &ctx, &ds, &cfg, 6).unwrap();

    let dir = scratch_dir("rbm-momentum");
    let policy = CheckpointPolicy::new(&dir, 3);
    let ckpt_cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..cfg.clone()
    };
    {
        let mut first = make_model();
        let ctx1 = ExecCtx::native(OptLevel::Improved, 21);
        train_dataset(&mut first, &ctx1, &ds, &ckpt_cfg, 3).unwrap();
    }

    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    // CD-1 draws one Bernoulli stream per batch from the context's
    // counter-based allocator; a context built with any other seed must be
    // overwritten by the checkpoint's (seed, cursor) for the Gibbs chain
    // to continue identically.
    let ctx2 = ExecCtx::native(OptLevel::Improved, 0);
    ckpt.restore_rng(&ctx2);
    let progress = ckpt.progress;
    let mut resumed = ckpt.into_rbm().expect("RBM checkpoint");
    train_dataset_resume(&mut resumed, &ctx2, &ds, &ckpt_cfg, 6, &progress).unwrap();

    assert_eq!(straight.rbm.w.as_slice(), resumed.rbm.w.as_slice());
    assert_eq!(straight.rbm.b_vis, resumed.rbm.b_vis);
    assert_eq!(straight.rbm.c_hid, resumed.rbm.c_hid);
    assert_eq!(straight.momentum_parts(), resumed.momentum_parts());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CNN's checkpoint carries the label cursor alongside the weights —
/// stream labels are a pure function of it, so the resumed leg replays
/// the exact label sequence the uninterrupted run saw. The resumed model
/// is rebuilt graph-scheduled through the layer IR.
#[test]
fn cnn_resume_is_bit_identical() {
    let cnn_cfg = CnnConfig::new(8, 3, 3, 2, 10, 4);
    let ds = toy_dataset(200, cnn_cfg.input_dim(), 31);
    let cfg = base_config();
    let make_model =
        || CnnModel::new(CnnNet::new(cnn_cfg, 33), ds.len() as u64).with_graph_schedule();

    let mut straight = make_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 35);
    train_dataset(&mut straight, &ctx, &ds, &cfg, 6).unwrap();

    let dir = scratch_dir("cnn");
    let policy = CheckpointPolicy::new(&dir, 5);
    let ckpt_cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..cfg.clone()
    };
    {
        let mut first = make_model();
        let ctx1 = ExecCtx::native(OptLevel::Improved, 35);
        train_dataset(&mut first, &ctx1, &ds, &ckpt_cfg, 3).unwrap();
    }

    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    assert_eq!(ckpt.progress.epoch, 3);
    let ctx2 = ExecCtx::native(OptLevel::Improved, 0);
    ckpt.restore_rng(&ctx2);
    let progress = ckpt.progress;
    let mut resumed = ckpt.into_cnn().expect("CNN checkpoint");
    train_dataset_resume(&mut resumed, &ctx2, &ds, &ckpt_cfg, 6, &progress).unwrap();

    assert_eq!(
        straight.net.conv_w.as_slice(),
        resumed.net.conv_w.as_slice()
    );
    assert_eq!(straight.net.conv_b, resumed.net.conv_b);
    assert_eq!(
        straight.net.dense_w.as_slice(),
        resumed.net.dense_w.as_slice()
    );
    assert_eq!(straight.net.dense_b, resumed.net.dense_b);
    assert_eq!(
        straight.net.softmax.w.as_slice(),
        resumed.net.softmax.w.as_slice()
    );
    assert_eq!(straight.net.softmax.b, resumed.net.softmax.b);
    assert_eq!(straight.cursor_parts(), resumed.cursor_parts());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multidev_rbm_resume_is_bit_identical_including_device_cursors() {
    let mut ds = toy_dataset(200, 12, 14);
    ds.binarize(0.5);
    let cfg = TrainConfig {
        learning_rate: 0.1,
        ..base_config()
    };
    // A four-device replica set with device 3 already offline: the
    // checkpoint must carry the geometry, the offline flag and every
    // device's (seed, cursor) sampler position across the boundary.
    let make_model = || {
        let mut m =
            DataParallelRbm::new(Rbm::new(RbmConfig::new(12, 9), 29), MultiDevConfig::new(4));
        m.mark_device_offline(3).unwrap();
        m
    };

    let mut straight = make_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 21);
    train_dataset(&mut straight, &ctx, &ds, &cfg, 6).unwrap();

    let dir = scratch_dir("multidev-rbm");
    let policy = CheckpointPolicy::new(&dir, 3);
    let ckpt_cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..cfg.clone()
    };
    {
        let mut first = make_model();
        let ctx1 = ExecCtx::native(OptLevel::Improved, 21);
        train_dataset(&mut first, &ctx1, &ds, &ckpt_cfg, 3).unwrap();
        // `first` and `ctx1` drop here: only the file crosses the boundary.
    }

    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    assert_eq!(ckpt.progress.epoch, 3);
    let ctx2 = ExecCtx::native(OptLevel::Improved, 0); // overwritten by restore
    ckpt.restore_rng(&ctx2);
    let progress = ckpt.progress;
    // Rebuild from nothing but the file. The placeholder model is built
    // with the *wrong* seed and a single device on purpose: every piece of
    // restored state must come off disk, not from the constructor.
    let mut resumed =
        DataParallelRbm::new(Rbm::new(RbmConfig::new(12, 9), 0), MultiDevConfig::new(1));
    resumed.restore_state(ckpt.model).unwrap();
    assert_eq!(resumed.config().devices, 4, "geometry must come off disk");
    assert_eq!(
        resumed.device_set().online_count(),
        3,
        "offline flag must survive the process boundary"
    );
    train_dataset_resume(&mut resumed, &ctx2, &ds, &ckpt_cfg, 6, &progress).unwrap();

    // CD-1 draws from the context's counter-based streams each batch, so
    // matching weights prove the restored cursors continued the Gibbs
    // chains exactly where leg 1 stopped.
    assert_eq!(straight.rbm().w.as_slice(), resumed.rbm().w.as_slice());
    assert_eq!(straight.rbm().b_vis, resumed.rbm().b_vis);
    assert_eq!(straight.rbm().c_hid, resumed.rbm().c_hid);
    assert_eq!(
        straight.dev_rng(),
        resumed.dev_rng(),
        "per-device sampler cursors diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_epoch_resumes_bit_identically() {
    let ds = toy_dataset(200, 16, 8);
    let cfg = base_config();
    let make_model = || AeModel::new(SparseAutoencoder::new(AeConfig::new(16, 8), 17));

    let mut straight = make_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 2);
    train_dataset(&mut straight, &ctx, &ds, &cfg, 2).unwrap();

    // "Crash" partway through epoch 1: feed the first three chunks, then a
    // wrong-width chunk. The trainer bails with DimensionMismatch but first
    // leaves a best-effort checkpoint of everything trained so far.
    let dir = scratch_dir("crash");
    let policy = CheckpointPolicy::new(&dir, 0);
    let ckpt_cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..cfg.clone()
    };
    {
        let chunks = ds.clone().into_chunks(cfg.chunk_rows);
        let mut feed: Vec<Mat> = chunks.iter().take(3).cloned().collect();
        feed.push(Mat::zeros(10, 5)); // loader fault
        let mut first = make_model();
        let ctx1 = ExecCtx::native(OptLevel::Improved, 2);
        let err = train_stream(
            &mut first,
            &ctx1,
            micdnn_sim::VecSource::new(feed),
            &ckpt_cfg,
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::DimensionMismatch { .. }));
    }

    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    // 3 chunks of 50 rows at batch 25 = 6 batches, mid-epoch (8 per epoch).
    assert_eq!(ckpt.progress.batches, 6);
    let ctx2 = ExecCtx::native(OptLevel::Improved, 2);
    ckpt.restore_rng(&ctx2);
    let progress = ckpt.progress;
    let mut resumed = ckpt.into_ae().expect("AE checkpoint");
    let report = train_dataset_resume(&mut resumed, &ctx2, &ds, &ckpt_cfg, 2, &progress).unwrap();
    assert_eq!(report.batches, 2 * 8 - 6);

    assert_eq!(straight.ae.w1.as_slice(), resumed.ae.w1.as_slice());
    assert_eq!(straight.ae.w2.as_slice(), resumed.ae.w2.as_slice());
    assert_eq!(straight.ae.b1, resumed.ae.b1);
    assert_eq!(straight.ae.b2, resumed.ae.b2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stacked_pretraining_checkpoints_carry_the_layer_index() {
    let ds = toy_dataset(120, 16, 9);
    let dir = scratch_dir("stacked");
    let policy = CheckpointPolicy::new(&dir, 0);
    let cfg = TrainConfig {
        checkpoint: Some(policy.clone()),
        ..base_config()
    };
    let mut stack = StackedAutoencoder::with_default_config(&[16, 8, 4], 5);
    let ctx = ExecCtx::native(OptLevel::Improved, 6);
    stack.pretrain(&ctx, &ds, &cfg, 2).unwrap();

    // The last checkpoint written belongs to the deepest layer (index 1 of
    // the two trained layers) and records its 8->4 shape.
    let ckpt = load_checkpoint_file(policy.file()).unwrap();
    assert_eq!(ckpt.progress.layer, 1);
    let model = ckpt.into_ae().expect("AE checkpoint");
    assert_eq!(model.ae.config().n_visible, 8);
    assert_eq!(model.ae.config().n_hidden, 4);
    let _ = std::fs::remove_dir_all(&dir);
}
