//! The graph verifier (`micdnn::verify`) under attack and in production:
//!
//! 1. **Seeded mutations** — deliberately drop an inferred edge, alias a
//!    live buffer, or skip an init node, and assert the verifier reports
//!    each with the right [`DiagKind`] (and that the executor refuses to
//!    run the broken graph in debug builds);
//! 2. **Random DAGs** (proptest) — every builder-made graph verifies with
//!    zero errors, and dropping a random edge is caught exactly when the
//!    endpoints genuinely lose their ordering;
//! 3. **Shipped graphs** — every AE / CD-k / fine-tune step shape used by
//!    training and `BENCH_graph.json` pins "0 errors, 0 warnings", and the
//!    CD-1 `h0_sample`→`h1_prob` alias is *proved race-free*, not just
//!    space-saving;
//! 4. **`race-check` sanitizer** (feature-gated) — an intentionally
//!    injected concurrent write trips the per-register claim tracker with
//!    a readable diagnostic, and clean graphs run quietly under it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use micdnn::ae_graph::{build_ae_graph, AeUpdate};
use micdnn::cd_graph::build_cd_graph;
use micdnn::exec::{ExecCtx, OptLevel};
use micdnn::finetune::build_step_graph;
use micdnn::train::TrainConfig;
use micdnn::{BufClass, DiagKind, NodeSpec, StackedAutoencoder, TaskGraph};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// The (n_visible, n_hidden, batch) shapes exported to `BENCH_graph.json`,
/// plus the paper's headline 1024×4096 layer.
const BENCH_SIZES: &[(usize, usize, usize)] = &[
    (256, 512, 100),
    (512, 1024, 200),
    (1024, 2048, 200),
    (1024, 4096, 100),
];

// ---------------------------------------------------------------------------
// 1. Seeded mutations: each corruption maps to its diagnostic kind.
// ---------------------------------------------------------------------------

/// produce → transform → consume over scratch buffers with a pinned output.
fn three_stage() -> TaskGraph<'static, ()> {
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    let a = g.declare("a", 64, BufClass::Scratch);
    let b = g.declare("b", 64, BufClass::Scratch);
    let out = g.declare("out", 64, BufClass::Pinned);
    g.node(NodeSpec::new("produce").writes(&[a]), |_, _| {});
    g.node(
        NodeSpec::new("transform").reads(&[a]).writes(&[b]),
        |_, _| {},
    );
    g.node(
        NodeSpec::new("consume").reads(&[b]).writes(&[out]),
        |_, _| {},
    );
    g
}

#[test]
fn dropped_inferred_edge_reports_race() {
    let mut g = three_stage();
    assert!(g.verify().is_clean());
    g.testonly_drop_dep(1, 0); // transform no longer waits for produce
    let report = g.verify();
    assert!(report.has(DiagKind::Race), "{report}");
    let race = report
        .errors
        .iter()
        .find(|d| d.kind == DiagKind::Race)
        .expect("race diagnostic");
    assert_eq!(race.buffer, Some("a"));
    let labels: Vec<&str> = race.nodes.iter().map(|&(_, l)| l).collect();
    assert_eq!(labels, ["produce", "transform"]);
}

#[test]
fn skipped_init_node_reports_use_before_init() {
    // The same pipeline with its init node "forgotten" entirely.
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    let a = g.declare("a", 64, BufClass::Scratch);
    let out = g.declare("out", 64, BufClass::Pinned);
    g.node(
        NodeSpec::new("transform").reads(&[a]).writes(&[out]),
        |_, _| {},
    );
    let report = g.verify();
    assert!(report.has(DiagKind::UseBeforeInit), "{report}");
    assert_eq!(report.errors[0].buffer, Some("a"));
}

#[test]
fn aliasing_a_live_buffer_reports_unsafe_alias() {
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    let a = g.declare("a", 64, BufClass::Scratch);
    let b = g.declare("b", 64, BufClass::Scratch);
    let out = g.declare("out", 64, BufClass::Pinned);
    g.node(NodeSpec::new("mkA").writes(&[a]), |_, _| {});
    g.node(NodeSpec::new("mkB").writes(&[b]), |_, _| {});
    g.node(
        NodeSpec::new("sum").reads(&[a, b]).writes(&[out]),
        |_, _| {},
    );
    // The honest plan keeps the simultaneously-live pair apart…
    let mut plan = g.plan();
    assert_ne!(plan.register_of(a), plan.register_of(b));
    assert!(g.verify_with_plan(&plan).errors.is_empty());
    // …so corrupt it, mapping both onto one register.
    plan.testonly_force_alias(a, b);
    let report = g.verify_with_plan(&plan);
    assert!(report.has(DiagKind::UnsafeAlias), "{report}");
}

#[test]
fn debug_executor_refuses_a_corrupted_graph() {
    // `cargo test` keeps debug-assertions on, so `execute` verifies every
    // graph before running it and must panic with the full report.
    let mut g = three_stage();
    g.testonly_drop_dep(1, 0);
    let ctx = ExecCtx::native(OptLevel::Improved, 0);
    let err = catch_unwind(AssertUnwindSafe(|| {
        g.execute(&ctx, &mut ());
    }))
    .expect_err("executor must reject the corrupted graph");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload should be the report");
    assert!(msg.contains("verification failed"), "{msg}");
    assert!(msg.contains("error[race]"), "{msg}");
}

#[test]
fn unordered_stochastic_nodes_report_determinism_hazard() {
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    let a = g.declare("a", 64, BufClass::Pinned);
    let b = g.declare("b", 64, BufClass::Pinned);
    g.node(
        NodeSpec::new("sampleA").writes(&[a]).stochastic(),
        |_, _| {},
    );
    g.node(
        NodeSpec::new("sampleB").writes(&[b]).stochastic(),
        |_, _| {},
    );
    let report = g.verify();
    assert!(report.has(DiagKind::UnorderedStochastic), "{report}");
}

#[test]
fn forcing_a_side_effect_into_a_wave_is_caught() {
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    let a = g.declare("a", 64, BufClass::Pinned);
    let s = g.node(NodeSpec::new("sample").writes(&[a]).stochastic(), |_, _| {});
    g.testonly_force_wave_ok(s);
    let report = g.verify();
    assert!(report.has(DiagKind::SideEffectInWave), "{report}");
}

// ---------------------------------------------------------------------------
// 2. Random DAGs: soundness both ways.
// ---------------------------------------------------------------------------

/// Random RAW-only DAG in the `graph_properties` style: node `i` writes its
/// own buffer and reads the buffers of `deps[i]` (all `< i`), so the
/// builder's inferred edges equal the chosen edges exactly.
struct RandomDag {
    deps: Vec<Vec<usize>>,
    elems: Vec<usize>,
    classes: Vec<BufClass>,
}

impl RandomDag {
    fn generate(n: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut deps = Vec::with_capacity(n);
        let mut elems = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(6);
            deps.push((lo..i).filter(|_| rng.gen_bool(0.35)).collect::<Vec<_>>());
            elems.push(rng.gen_range(32..2048));
            classes.push(if rng.gen_bool(0.2) {
                BufClass::Pinned
            } else {
                BufClass::Scratch
            });
        }
        RandomDag {
            deps,
            elems,
            classes,
        }
    }

    fn build(&self) -> TaskGraph<'static, ()> {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let bufs: Vec<_> = (0..self.deps.len())
            .map(|i| g.declare("buf", self.elems[i], self.classes[i]))
            .collect();
        for (i, deps) in self.deps.iter().enumerate() {
            let reads: Vec<_> = deps.iter().map(|&d| bufs[d]).collect();
            g.node(
                NodeSpec::new("node").reads(&reads).writes(&[bufs[i]]),
                |_, _| {},
            );
        }
        g
    }
}

/// Transitive closure over an explicit dependency-list forest:
/// `reach[u][v]` iff a path leads from `u` to `v`.
fn reachability(deps: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let n = deps.len();
    let mut reach = vec![vec![false; n]; n];
    for v in 0..n {
        for &u in &deps[v] {
            reach[u][v] = true;
            for row in reach.iter_mut() {
                if row[u] {
                    row[v] = true;
                }
            }
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No false positives: whatever DAG the builder infers from declared
    /// footprints, the verifier finds zero errors (warnings — e.g. dead
    /// terminal scratch writes — are allowed).
    #[test]
    fn builder_graphs_always_verify_error_free(n in 1usize..24, seed in any::<u64>()) {
        let report = RandomDag::generate(n, seed).build().verify();
        prop_assert!(report.errors.is_empty(), "{}", report);
    }

    /// No false negatives (and still no false positives): dropping one
    /// inferred edge yields an error exactly when the endpoints genuinely
    /// lose their ordering — if another dependency path still orders them,
    /// the graph must stay error-free.
    #[test]
    fn dropping_an_edge_is_caught_iff_order_is_lost(
        n in 2usize..24,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let dag = RandomDag::generate(n, seed);
        let edges: Vec<(usize, usize)> = dag
            .deps
            .iter()
            .enumerate()
            .flat_map(|(i, ds)| ds.iter().map(move |&d| (i, d)))
            .collect();
        prop_assume!(!edges.is_empty());
        let (node, dep) = edges[(pick as usize) % edges.len()];

        let mut g = dag.build();
        g.testonly_drop_dep(node, dep);
        let report = g.verify();

        let mut cut = dag.deps.clone();
        cut[node].retain(|&d| d != dep);
        let still_ordered = reachability(&cut)[dep][node];
        if still_ordered {
            prop_assert!(report.errors.is_empty(),
                "transitively ordered pair misreported:\n{}", report);
        } else {
            prop_assert!(report.has(DiagKind::Race),
                "lost ordering of {} -> {} went undetected:\n{}", dep, node, report);
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Shipped graphs: every training shape pins "0 errors, 0 warnings".
// ---------------------------------------------------------------------------

#[test]
fn shipped_ae_graphs_verify_clean_at_all_bench_sizes() {
    for &(nv, nh, b) in BENCH_SIZES {
        for update in [AeUpdate::None, AeUpdate::Sgd, AeUpdate::Opt] {
            let g = build_ae_graph(nv, nh, b, update);
            let report = g.verify();
            assert!(
                report.is_clean(),
                "AE {nv}x{nh} b={b} {update:?} must verify 0/0:\n{report}"
            );
        }
    }
}

#[test]
fn shipped_cd_graphs_verify_clean_at_all_bench_sizes() {
    for &(nv, nh, b) in BENCH_SIZES {
        for k in [1, 2, 3] {
            let g = build_cd_graph(nv, nh, b, k);
            let report = g.verify();
            assert!(
                report.is_clean(),
                "CD-{k} {nv}x{nh} b={b} must verify 0/0:\n{report}"
            );
        }
    }
}

#[test]
fn shipped_finetune_graphs_verify_clean() {
    for (in_dim, widths, classes, cap) in [
        (144, vec![64], 10, 64),
        (784, vec![512, 256], 10, 200),
        (256, vec![128, 64, 32], 4, 100),
    ] {
        let g = build_step_graph(in_dim, &widths, classes, cap);
        let report = g.verify();
        assert!(
            report.is_clean(),
            "fine-tune {in_dim}->{widths:?}->{classes} must verify 0/0:\n{report}"
        );
    }
}

/// The layer-IR CNN step — the first graph shipped through the trait
/// builder that has no hand-rolled ancestor — is pinned to the same
/// "0 errors, 0 warnings" bar as the paper's graphs across image, filter
/// and pooling geometries. A dead-write warning here is the named likely
/// regression for the conv/pool backward path (an unpool scatter or
/// argmax-index write that nothing reads).
#[test]
fn shipped_cnn_graphs_verify_clean() {
    for (side, channels, kernel, pool, hidden, classes, cap) in [
        (12, 6, 5, 2, 48, 10, 16),
        (16, 6, 5, 2, 48, 10, 64),
        (16, 8, 3, 2, 64, 10, 100),
        (28, 4, 5, 4, 32, 10, 50),
        (8, 2, 3, 3, 8, 4, 10),
    ] {
        let cfg = micdnn::CnnConfig::new(side, channels, kernel, pool, hidden, classes);
        let g = micdnn::build_cnn_graph(cfg, cap);
        let report = g.verify();
        assert!(
            report.is_clean(),
            "CNN {side}x{side} c={channels} k={kernel} p={pool} cap={cap} must verify 0/0:\n{report}"
        );
    }
}

/// The serving path's forward-only graph is held to the same bar as the
/// training steps: zero errors *and* zero warnings across representative
/// shapes — including depth 1, the paper's headline widths, and a deep
/// narrow stack — so a dead write or missing edge in the inference chain
/// can never ship silently.
#[test]
fn serve_forward_graphs_verify_clean() {
    for (in_dim, widths, classes, cap) in [
        (144, vec![64], 10, 64),
        (784, vec![512, 256], 10, 200),
        (256, vec![128, 64, 32], 4, 100),
        (1024, vec![4096], 10, 256),
    ] {
        let (g, _) = micdnn::build_forward_graph(in_dim, &widths, classes, cap);
        let report = g.verify();
        assert!(
            report.is_clean(),
            "serve forward {in_dim}->{widths:?}->{classes} must verify 0/0:\n{report}"
        );
    }
}

#[test]
fn cd1_sample_alias_is_proved_race_free() {
    // PR 3's planner folds `h0_sample` and `h1_prob` into one register at
    // CD-1 (the sample dies before the last hidden probabilities are
    // born). The verifier must *prove* that — the pair shows up in
    // `verified_alias_pairs`, meaning every accessor of one strictly
    // precedes every accessor of the other — not merely observe the saving.
    let g = build_cd_graph(1024, 4096, 100, 1);
    let plan = g.plan();
    let report = g.verify_with_plan(&plan);
    assert!(report.is_clean(), "{report}");
    let proved = report.verified_alias_pairs.iter().any(|&(a, b)| {
        (a == "h0_sample" && b == "h1_prob") || (a == "h1_prob" && b == "h0_sample")
    });
    assert!(
        proved,
        "h0_sample/h1_prob alias missing from verified pairs: {:?}",
        report.verified_alias_pairs
    );
    assert!(plan.peak_elems() < plan.total_declared_elems());
}

// ---------------------------------------------------------------------------
// 5. Multi-device pipeline graphs: cross-device edges must be mediated by
//    transfer nodes, and the shipped schedules pin "0 errors, 0 warnings".
// ---------------------------------------------------------------------------

/// Every shipped pipelined pre-training graph — per-layer devices joined by
/// `.transfer()` xfer nodes over the modeled link — verifies 0/0 across
/// stack shapes, chunk geometries and pass counts. In particular every
/// layer-k -> layer-k+1 edge is ordered through its transfer node, so the
/// cross-device check stays silent.
#[test]
fn shipped_pipeline_graphs_verify_clean() {
    for (sizes, rows, chunk_rows, passes) in [
        (vec![16usize, 8], 40, 20, 1),
        (vec![16, 8, 4], 90, 30, 2),
        (vec![12, 9, 6, 3], 45, 15, 3),
        (vec![16, 8, 4], 35, 50, 2), // a single partial chunk
    ] {
        let stack = StackedAutoencoder::with_default_config(&sizes, 7);
        let cfg = TrainConfig {
            batch_size: 10,
            chunk_rows,
            ..TrainConfig::default()
        };
        let g = stack.pipeline_graph(&cfg, rows, passes);
        let report = g.verify();
        assert!(
            report.is_clean(),
            "pipeline {sizes:?} rows={rows} chunk={chunk_rows} passes={passes} \
             must verify 0/0:\n{report}"
        );
    }
}

/// Cutting the inter-device handoff out of a pipeline graph is caught: the
/// staging buffer's producer and its transfer node end up on different
/// devices with no ordering, so the verifier reports both the race and the
/// cross-device teleport.
#[test]
fn unmediated_pipeline_edge_reports_cross_device_flow() {
    // Two layers, one chunk, one pass: train0 -> encode -> xfer -> train1.
    let stack = StackedAutoencoder::with_default_config(&[12, 8, 4], 5);
    let cfg = TrainConfig {
        batch_size: 10,
        chunk_rows: 30,
        ..TrainConfig::default()
    };
    let mut g = stack.pipeline_graph(&cfg, 30, 1);
    assert_eq!(g.len(), 4);
    assert!(g.verify().is_clean());

    // Drop the xfer's dependency on the encode that fills its staging
    // buffer: layer 0's activations would have to teleport to device 1.
    g.testonly_drop_dep(2, 1);
    let report = g.verify();
    assert!(report.has(DiagKind::Race), "{report}");
    assert!(report.has(DiagKind::CrossDeviceFlow), "{report}");
    let diag = report
        .errors
        .iter()
        .find(|d| d.kind == DiagKind::CrossDeviceFlow)
        .expect("cross-device diagnostic");
    assert!(
        diag.message.contains("device 0") && diag.message.contains("device 1"),
        "{}",
        diag.message
    );
}

// ---------------------------------------------------------------------------
// 6. Certification: shape inference, determinism audit, peak-memory proofs.
// ---------------------------------------------------------------------------

use micdnn::DEFAULT_MEM_BUDGET;

/// Every shipped single-device training/serving graph certifies clean —
/// the full pipeline (safety verifier + shape inference + determinism
/// audit + peak-memory proof against the 8 GB card budget) reports zero
/// errors and zero warnings, so the committed `VERIFY_report.json` can pin
/// the same bar in CI.
#[test]
fn all_shipped_graphs_certify_clean() {
    for &(nv, nh, b) in BENCH_SIZES {
        for update in [AeUpdate::None, AeUpdate::Sgd, AeUpdate::Opt] {
            let outcome = build_ae_graph(nv, nh, b, update).certify(DEFAULT_MEM_BUDGET);
            assert!(
                outcome.is_clean(),
                "AE {nv}x{nh} b={b} {update:?} must certify 0/0:\n{}",
                outcome.report
            );
        }
        for k in [1, 2, 3] {
            let outcome = build_cd_graph(nv, nh, b, k).certify(DEFAULT_MEM_BUDGET);
            assert!(
                outcome.is_clean(),
                "CD-{k} {nv}x{nh} b={b} must certify 0/0:\n{}",
                outcome.report
            );
        }
    }
    for (in_dim, widths, classes, cap) in [
        (144, vec![64], 10, 64),
        (784, vec![512, 256], 10, 200),
        (256, vec![128, 64, 32], 4, 100),
    ] {
        let outcome = build_step_graph(in_dim, &widths, classes, cap).certify(DEFAULT_MEM_BUDGET);
        assert!(
            outcome.is_clean(),
            "fine-tune {in_dim}->{widths:?}->{classes} must certify 0/0:\n{}",
            outcome.report
        );
    }
    for (in_dim, widths, classes, cap) in [
        (144, vec![64], 10, 64),
        (784, vec![512, 256], 10, 200),
        (256, vec![128, 64, 32], 4, 100),
        (1024, vec![4096], 10, 256),
    ] {
        let (g, _) = micdnn::build_forward_graph(in_dim, &widths, classes, cap);
        let outcome = g.certify(DEFAULT_MEM_BUDGET);
        assert!(
            outcome.is_clean(),
            "serve forward {in_dim}->{widths:?}->{classes} must certify 0/0:\n{}",
            outcome.report
        );
    }
}

/// Dead-write audit of the CNN step plans: at every shipped geometry the
/// certified report carries zero dead-write findings (and no warnings of
/// any kind) — the named likely regression for the conv/pool backward
/// path is an unpool scatter or argmax-index write nothing reads.
#[test]
fn cnn_plans_certify_with_no_dead_writes() {
    for (side, channels, kernel, pool, hidden, classes, cap) in [
        (12, 6, 5, 2, 48, 10, 16),
        (16, 6, 5, 2, 48, 10, 64),
        (16, 8, 3, 2, 64, 10, 100),
        (28, 4, 5, 4, 32, 10, 50),
        (8, 2, 3, 3, 8, 4, 10),
    ] {
        let cfg = micdnn::CnnConfig::new(side, channels, kernel, pool, hidden, classes);
        let outcome = micdnn::build_cnn_graph(cfg, cap).certify(DEFAULT_MEM_BUDGET);
        assert_eq!(
            outcome.report.count(DiagKind::DeadWrite),
            0,
            "CNN {side}x{side} c={channels} k={kernel} p={pool} cap={cap} has dead writes:\n{}",
            outcome.report
        );
        assert!(
            outcome.is_clean(),
            "CNN {side}x{side} c={channels} k={kernel} p={pool} cap={cap} must certify 0/0:\n{}",
            outcome.report
        );
    }
}

/// Dead-write audit of the pipelined pre-training plans: across stack
/// shapes, chunk geometries and pass counts, the multi-device schedule
/// certifies with zero dead writes and zero findings overall (the
/// ordering-only link tokens are Pinned precisely to stay exempt).
#[test]
fn pipeline_plans_certify_with_no_dead_writes() {
    for (sizes, rows, chunk_rows, passes) in [
        (vec![16usize, 8], 40, 20, 1),
        (vec![16, 8, 4], 90, 30, 2),
        (vec![12, 9, 6, 3], 45, 15, 3),
        (vec![16, 8, 4], 35, 50, 2),
    ] {
        let stack = StackedAutoencoder::with_default_config(&sizes, 7);
        let cfg = TrainConfig {
            batch_size: 10,
            chunk_rows,
            ..TrainConfig::default()
        };
        let outcome = stack
            .pipeline_graph(&cfg, rows, passes)
            .certify(DEFAULT_MEM_BUDGET);
        assert_eq!(
            outcome.report.count(DiagKind::DeadWrite),
            0,
            "pipeline {sizes:?} rows={rows} chunk={chunk_rows} passes={passes} has dead writes:\n{}",
            outcome.report
        );
        assert!(
            outcome.is_clean(),
            "pipeline {sizes:?} rows={rows} chunk={chunk_rows} passes={passes} must certify 0/0:\n{}",
            outcome.report
        );
        assert_eq!(
            outcome.device_peaks.len(),
            sizes.len() - 1,
            "one proof per card"
        );
    }
}

/// Two fully shape-declared stages over dims-declared buffers; certifies
/// clean until a mutation hook corrupts it.
fn shaped_two_stage() -> (TaskGraph<'static, ()>, micdnn::BufId, micdnn::BufId) {
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    let a = g.declare_dims("a", &[8, 8], BufClass::Scratch);
    let b = g.declare_dims("b", &[8, 8], BufClass::Pinned);
    g.node(NodeSpec::new("produce").writes(&[a]), |_, _| {});
    g.node(NodeSpec::new("consume").reads(&[a]).writes(&[b]), |_, _| {});
    (g, a, b)
}

/// Mutation: shrinking a buffer under its declared dims flips exactly the
/// shape-mismatch rule — one new error naming the buffer, nothing else.
#[test]
fn shrinking_a_buffer_flips_only_shape_mismatch() {
    let (mut g, a, _) = shaped_two_stage();
    let before = g.certify(DEFAULT_MEM_BUDGET);
    assert!(before.is_clean(), "{}", before.report);
    g.testonly_shrink_buf(a);
    let after = g.certify(DEFAULT_MEM_BUDGET);
    assert_eq!(
        after.report.errors.len(),
        1,
        "exactly one new error:\n{}",
        after.report
    );
    assert!(after.report.warnings.is_empty(), "{}", after.report);
    let diag = &after.report.errors[0];
    assert_eq!(diag.kind, DiagKind::ShapeMismatch, "{}", after.report);
    assert_eq!(diag.buffer, Some("a"));
}

/// Mutation: a budget one byte under the proven peak flips the mem-budget
/// rule, and the diagnostic names the exact peak wave, byte count and the
/// live set attaining it.
#[test]
fn tightening_the_budget_names_the_peak_wave() {
    let g = build_cd_graph(1024, 4096, 100, 1);
    let proven = g.certify(DEFAULT_MEM_BUDGET);
    assert!(proven.is_clean(), "{}", proven.report);
    let peak = &proven.device_peaks[0];
    assert!(peak.peak_bytes > 0);

    let broke = g.certify(peak.peak_bytes - 1);
    assert!(broke.report.has(DiagKind::MemBudget), "{}", broke.report);
    let diag = broke
        .report
        .errors
        .iter()
        .find(|d| d.kind == DiagKind::MemBudget)
        .expect("mem-budget diagnostic");
    assert_eq!(diag.wave, Some(peak.peak_wave), "{}", diag.message);
    assert_eq!(diag.bytes, Some(peak.peak_bytes), "{}", diag.message);
    assert!(diag.message.contains("live set"), "{}", diag.message);
    // The exact budget is still provable.
    assert!(g.certify(peak.peak_bytes).is_clean());
}

/// Mutation: stripping the declared RNG cursors from a sampling graph
/// flips the determinism audit — and only for `certify`; the plain
/// executor-facing `verify` pass must keep accepting the graph.
#[test]
fn stripping_cursor_decls_flips_the_determinism_audit() {
    let mut g = build_cd_graph(64, 32, 10, 2);
    assert!(g.certify(DEFAULT_MEM_BUDGET).is_clean());
    g.testonly_strip_cursor_decls();
    let outcome = g.certify(DEFAULT_MEM_BUDGET);
    assert!(
        outcome.report.has(DiagKind::UndeclaredStochastic),
        "{}",
        outcome.report
    );
    assert!(
        g.verify().is_clean(),
        "certification rules must not leak into the verify path"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The difference-array peak-memory proof equals the brute-force
    /// per-wave maximum over live sets: for random DAGs, walking every
    /// wave and summing each register whose occupants are live (plus
    /// nothing else — these DAGs have no externals) reproduces the
    /// certified peak bytes and peak wave exactly.
    #[test]
    fn certified_peak_matches_brute_force(n in 1usize..24, seed in any::<u64>()) {
        let dag = RandomDag::generate(n, seed);
        // Inline build to keep the BufIds (RandomDag::build discards them).
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let bufs: Vec<_> = (0..n)
            .map(|i| g.declare("buf", dag.elems[i], dag.classes[i]))
            .collect();
        for (i, deps) in dag.deps.iter().enumerate() {
            let reads: Vec<_> = deps.iter().map(|&d| bufs[d]).collect();
            g.node(
                NodeSpec::new("node").reads(&reads).writes(&[bufs[i]]),
                |_, _| {},
            );
        }
        let plan = g.plan();
        let outcome = g.certify_with_plan(&plan, DEFAULT_MEM_BUDGET);

        // ASAP waves, as the certifier defines them.
        let mut wave = vec![0usize; n];
        for i in 0..n {
            wave[i] = dag.deps[i].iter().map(|&d| wave[d] + 1).max().unwrap_or(0);
        }
        let waves = wave.iter().max().map(|&w| w + 1).unwrap_or(0);
        let last = waves - 1;
        // Buffer b is written by node b and read by every node depending on b.
        let mut first_w = vec![usize::MAX; n];
        let mut last_w = vec![0usize; n];
        for (i, &w) in wave.iter().enumerate() {
            for &b in dag.deps[i].iter().chain(std::iter::once(&i)) {
                first_w[b] = first_w[b].min(w);
                last_w[b] = last_w[b].max(w);
            }
        }
        let live = |b: usize, w: usize| -> bool {
            first_w[b] != usize::MAX
                && match dag.classes[b] {
                    BufClass::Scratch => first_w[b] <= w && w <= last_w[b],
                    BufClass::Pinned => first_w[b] <= w && w <= last,
                    BufClass::External => w <= last,
                }
        };
        let mut brute_peak = 0u64;
        let mut brute_wave = 0usize;
        for w in 0..waves {
            let mut resident = 0u64;
            for r in 0..plan.num_registers() {
                let occupied = (0..n)
                    .any(|b| plan.register_of(bufs[b]) == Some(r) && live(b, w));
                if occupied {
                    resident += plan.register_size(r) as u64 * 4;
                }
            }
            if resident > brute_peak {
                brute_peak = resident;
                brute_wave = w;
            }
        }
        prop_assert_eq!(outcome.waves, waves);
        prop_assert_eq!(outcome.device_peaks.len(), 1);
        prop_assert_eq!(outcome.device_peaks[0].peak_bytes, brute_peak,
            "peak bytes diverge from brute force (seed {})", seed);
        prop_assert_eq!(outcome.device_peaks[0].peak_wave, brute_wave,
            "peak wave diverges from brute force (seed {})", seed);
    }
}

// ---------------------------------------------------------------------------
// 4. The dynamic sanitizer (`--features race-check`).
// ---------------------------------------------------------------------------

/// A clean, well-ordered graph runs quietly under the claim tracker: the
/// sanitizer must never fire on schedules the static verifier accepts.
#[cfg(feature = "race-check")]
#[test]
fn race_check_is_quiet_on_a_clean_concurrent_graph() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let hits = Arc::new(AtomicUsize::new(0));
    let mut g: TaskGraph<'static, ()> = TaskGraph::new();
    // A diamond: two independent mid nodes form a wave.
    let src = g.declare("src", 64, BufClass::Scratch);
    let l = g.declare("l", 64, BufClass::Scratch);
    let r = g.declare("r", 64, BufClass::Scratch);
    let out = g.declare("out", 64, BufClass::Pinned);
    for (name, reads, writes) in [
        ("seed", vec![], vec![src]),
        ("left", vec![src], vec![l]),
        ("right", vec![src], vec![r]),
        ("join", vec![l, r], vec![out]),
    ] {
        let hits = Arc::clone(&hits);
        g.node(
            NodeSpec::new(name).reads(&reads).writes(&writes),
            move |_, _| {
                hits.fetch_add(1, Ordering::SeqCst);
            },
        );
    }
    let ctx = ExecCtx::native(OptLevel::Improved, 0);
    g.execute(&ctx, &mut ());
    assert_eq!(hits.load(Ordering::SeqCst), 4);
}

/// An injected concurrent write — a dropped WAW edge smuggled past the
/// static verifier — must trip the tracker with a readable diagnostic.
/// The node bodies only sleep (they never touch workspace memory), so the
/// injected schedule overlap is observable without real UB.
#[cfg(feature = "race-check")]
#[test]
fn race_check_catches_injected_concurrent_write() {
    use std::time::Duration;

    if rayon::current_num_threads() <= 1 {
        // Waves are disabled on a single-thread pool; nothing can overlap.
        return;
    }

    // The overlap window is timing-based (both nodes hold their claims for
    // `HOLD`), so allow a couple of attempts before declaring failure.
    const HOLD: Duration = Duration::from_millis(300);
    for _attempt in 0..3 {
        let mut g: TaskGraph<'static, ()> = TaskGraph::new();
        let x = g.declare("x", 64, BufClass::Scratch);
        let y = g.declare("y", 64, BufClass::Pinned);
        g.node(NodeSpec::new("writerA").writes(&[x]), |_, _| {
            std::thread::sleep(HOLD);
        });
        g.node(NodeSpec::new("writerB").writes(&[x]), |_, _| {
            std::thread::sleep(HOLD);
        });
        g.node(NodeSpec::new("sink").reads(&[x]).writes(&[y]), |_, _| {});
        g.testonly_drop_dep(1, 0); // un-order the two writers
        g.testonly_skip_verify(); // smuggle the race past the static pass

        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            g.execute(&ctx, &mut ());
        }));
        let Err(err) = result else {
            continue; // the writers happened not to overlap; retry
        };
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string");
        assert!(msg.contains("race-check"), "unexpected panic: {msg}");
        assert!(
            msg.contains("writer"),
            "diagnostic should name a node: {msg}"
        );
        return;
    }
    panic!("injected concurrent write was never detected in 3 attempts");
}
