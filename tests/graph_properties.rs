//! Property-based tests (proptest) for the dataflow execution layer:
//! random DAGs through the graph builder, the liveness planner and both
//! executors.
//!
//! Four invariants from the execution-layer design:
//!
//! 1. the native schedule never runs a node before its dependencies, at
//!    any `RAYON_NUM_THREADS` (the wave executor is order-safe);
//! 2. the simulated clock advance equals the brute-force longest path
//!    through the priced DAG;
//! 3. the workspace planner never assigns two *interfering* buffers (ones
//!    whose accessor sets are not strictly DAG-ordered) to one register;
//! 4. random layer stacks through the trait-driven `StackBuilder`
//!    (`micdnn::layers`) always verify with zero errors and zero
//!    warnings, and the wave executor reproduces the serial
//!    declaration-order schedule bit for bit.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use micdnn::exec::{ExecCtx, OptLevel};
use micdnn::{BufClass, BufId, NodeSpec, TaskGraph};
use micdnn_kernels::OpCost;
use micdnn_sim::Platform;
use micdnn_tensor::Mat;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// One randomly generated dataflow graph: node `i` writes its own buffer
/// and reads the buffers of `deps[i]` (all `< i`), so every dependency is
/// a RAW edge the builder must infer from the declared footprints.
struct RandomDag {
    /// Chosen read-dependencies per node (sorted, deduplicated).
    deps: Vec<Vec<usize>>,
    /// Declared element count of each node's output buffer.
    elems: Vec<usize>,
    /// Buffer class of each node's output buffer.
    classes: Vec<BufClass>,
}

impl RandomDag {
    fn generate(n: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut deps = Vec::with_capacity(n);
        let mut elems = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        for i in 0..n {
            // Read a random subset of the last few producers: recency keeps
            // chains realistic and lets early buffers die (alias fodder).
            let lo = i.saturating_sub(6);
            let mut d: Vec<usize> = (lo..i).filter(|_| rng.gen_bool(0.35)).collect();
            d.dedup();
            deps.push(d);
            // Small buffers stay sub-saturating so native waves can form.
            elems.push(rng.gen_range(32..2048));
            classes.push(if rng.gen_bool(0.2) {
                BufClass::Pinned
            } else {
                BufClass::Scratch
            });
        }
        RandomDag {
            deps,
            elems,
            classes,
        }
    }

    /// Builds the `TaskGraph`, wiring each node's task through `make_task`.
    fn build<'g, S: 'g>(
        &self,
        mut make_task: impl FnMut(usize) -> Box<dyn FnMut(&ExecCtx, &mut S) + Send + 'g>,
    ) -> (TaskGraph<'g, S>, Vec<BufId>) {
        let mut g: TaskGraph<'g, S> = TaskGraph::new();
        let mut bufs = Vec::with_capacity(self.deps.len());
        for i in 0..self.deps.len() {
            bufs.push(g.declare("buf", self.elems[i], self.classes[i]));
        }
        for (i, deps) in self.deps.iter().enumerate() {
            let reads: Vec<BufId> = deps.iter().map(|&d| bufs[d]).collect();
            g.node(
                NodeSpec::new("node").reads(&reads).writes(&[bufs[i]]),
                make_task(i),
            );
        }
        (g, bufs)
    }

    /// Strict-precedence matrix over the *chosen* edges: `reach[u][v]` iff
    /// a dependency path leads from `u` to `v` (so `u` must run first).
    fn reachability(&self) -> Vec<Vec<bool>> {
        let n = self.deps.len();
        let mut reach = vec![vec![false; n]; n];
        for v in 0..n {
            for &u in &self.deps[v] {
                reach[u][v] = true;
                for row in reach.iter_mut() {
                    if row[u] {
                        row[v] = true;
                    }
                }
            }
        }
        reach
    }
}

/// Shared observation state for the native-order test. Nodes only touch
/// per-node atomic slots, honouring the executor's disjoint-footprint
/// contract for concurrent waves.
struct OrderLog {
    done: Vec<AtomicBool>,
    violations: AtomicUsize,
}

/// Exhaustive longest-path search (no memoisation — genuinely brute force;
/// `n` is kept small enough that the exponential blowup stays cheap).
fn brute_force_longest(deps: &TaskGraph<'_, ()>, durations: &[f64], node: usize) -> f64 {
    let best_dep = deps
        .deps(node)
        .iter()
        .map(|&d| brute_force_longest(deps, durations, d))
        .fold(0.0f64, f64::max);
    durations[node] + best_dep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The builder infers exactly the RAW edges implied by the declared
    /// read/write sets, and the native executor (waves included) never
    /// starts a node before all of its dependencies finished — whatever
    /// thread count the environment provides.
    #[test]
    fn native_schedule_respects_dependencies(n in 1usize..24, seed in any::<u64>()) {
        let dag = RandomDag::generate(n, seed);
        let (mut g, _bufs) = dag.build::<OrderLog>(|i| {
            let deps = dag.deps[i].clone();
            Box::new(move |_ctx, log: &mut OrderLog| {
                for &d in &deps {
                    if !log.done[d].load(Ordering::SeqCst) {
                        log.violations.fetch_add(1, Ordering::SeqCst);
                    }
                }
                log.done[i].store(true, Ordering::SeqCst);
            })
        });

        // The builder's inferred dependency lists match the chosen edges.
        for (i, want) in dag.deps.iter().enumerate() {
            let mut got: Vec<usize> = g.deps(i).to_vec();
            got.sort_unstable();
            prop_assert_eq!(&got, want, "node {} dependency mismatch", i);
        }

        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let mut log = OrderLog {
            done: (0..n).map(|_| AtomicBool::new(false)).collect(),
            violations: AtomicUsize::new(0),
        };
        g.execute(&ctx, &mut log);
        prop_assert_eq!(log.violations.load(Ordering::SeqCst), 0,
            "executor ran a node before one of its dependencies");
        prop_assert!(log.done.iter().all(|d| d.load(Ordering::SeqCst)),
            "executor skipped a node");
    }

    /// On a simulated context the clock advances by exactly the critical
    /// path: the brute-force longest path through the per-node prices.
    #[test]
    fn simulated_critical_path_is_longest_path(n in 1usize..12, seed in any::<u64>()) {
        let dag = RandomDag::generate(n, seed);
        let (mut g, _bufs) = dag.build::<()>(|i| {
            let elems = dag.elems[i];
            // Vary arithmetic intensity so durations differ across nodes.
            let flops = 1 + (i as u32 % 7);
            Box::new(move |ctx: &ExecCtx, _| {
                ctx.charge_cost(OpCost::elementwise(elems, 2, flops));
            })
        });
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 0);
        let t0 = ctx.sim_time();
        let run = g.execute(&ctx, &mut ());

        prop_assert!(run.durations.iter().all(|&d| d > 0.0), "unpriced node");
        let brute = (0..n)
            .map(|i| brute_force_longest(&g, &run.durations, i))
            .fold(0.0f64, f64::max);
        let tol = 1e-9 * brute.max(1.0);
        prop_assert!((run.critical_path - brute).abs() <= tol,
            "critical path {} != brute-force longest path {}", run.critical_path, brute);
        prop_assert!((ctx.sim_time() - t0 - brute).abs() <= tol,
            "simulated clock advanced by {} instead of the critical path {}",
            ctx.sim_time() - t0, brute);
        let serial: f64 = run.durations.iter().sum();
        prop_assert!(run.critical_path <= serial + tol,
            "critical path cannot exceed the serial sum");
    }

    /// The static verifier agrees with this suite's own brute-force model:
    /// builder-made graphs carry no errors, and every register-sharing pair
    /// it blesses is strictly ordered under the chosen-edge reachability.
    #[test]
    fn verifier_matches_brute_force_orderings(n in 1usize..24, seed in any::<u64>()) {
        let dag = RandomDag::generate(n, seed);
        let (g, bufs) = dag.build::<()>(|_| Box::new(|_, _| {}));
        let report = g.verify();
        prop_assert!(report.errors.is_empty(), "{}", report);

        let mut accessors: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for (i, deps) in dag.deps.iter().enumerate() {
            for &d in deps {
                accessors[d].push(i);
            }
        }
        let reach = dag.reachability();
        let plan = g.plan();
        // Every register-sharing pair must have been blessed by the
        // verifier, and the ordering it proved must match this suite's own
        // brute-force reachability.
        let mut shared_pairs = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                let (Some(ra), Some(rb)) = (plan.register_of(bufs[a]), plan.register_of(bufs[b]))
                else { continue };
                if ra != rb {
                    continue;
                }
                shared_pairs += 1;
                let fwd = accessors[a].iter().all(|&u| accessors[b].iter().all(|&v| reach[u][v]));
                let bwd = accessors[b].iter().all(|&u| accessors[a].iter().all(|&v| reach[u][v]));
                prop_assert!(fwd || bwd, "verifier accepted an unordered alias {}/{}", a, b);
            }
        }
        prop_assert_eq!(report.verified_alias_pairs.len(), shared_pairs,
            "every register-sharing pair must be individually verified");
    }

    /// The planner only lets two buffers share a register when every
    /// accessor of one strictly precedes every accessor of the other —
    /// i.e. it never aliases two live buffers. Pinned buffers never share.
    #[test]
    fn planner_never_aliases_live_buffers(n in 1usize..24, seed in any::<u64>()) {
        let dag = RandomDag::generate(n, seed);
        let (g, bufs) = dag.build::<()>(|_| Box::new(|_, _| {}));
        let plan = g.plan();
        prop_assert!(plan.peak_elems() <= plan.total_declared_elems());

        // accessors[b]: the producer plus every reader of buffer b.
        let mut accessors: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for (i, deps) in dag.deps.iter().enumerate() {
            for &d in deps {
                accessors[d].push(i);
            }
        }
        let reach = dag.reachability();
        let strictly_ordered = |a: usize, b: usize| {
            accessors[a].iter().all(|&u| accessors[b].iter().all(|&v| reach[u][v]))
        };

        for a in 0..n {
            for b in (a + 1)..n {
                let (Some(ra), Some(rb)) = (plan.register_of(bufs[a]), plan.register_of(bufs[b]))
                else { continue };
                if ra != rb {
                    continue;
                }
                prop_assert!(
                    dag.classes[a] == BufClass::Scratch && dag.classes[b] == BufClass::Scratch,
                    "planner shared a register with a pinned buffer ({} / {})", a, b
                );
                prop_assert!(
                    strictly_ordered(a, b) || strictly_ordered(b, a),
                    "buffers {} and {} share register {} but are simultaneously live", a, b, ra
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Layer-IR stacks: random shapes through the trait-driven StackBuilder.
// ---------------------------------------------------------------------------

/// Uniform batch in `[0, 1)` plus one random label per row.
fn random_batch(rows: usize, cols: usize, classes: usize, seed: u64) -> (Mat, Vec<usize>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut x = Mat::zeros(rows, cols);
    for v in x.as_mut_slice() {
        *v = rng.gen_range(0.0f32..1.0);
    }
    let labels = (0..rows).map(|_| rng.gen_range(0..classes)).collect();
    (x, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random dense stacks through the `StackBuilder` fine-tune recipe:
    /// every generated graph verifies with zero errors *and* zero
    /// warnings, and training through the wave executor matches the
    /// serial declaration-order path bit for bit (losses and every
    /// parameter tensor) at whatever thread count the environment
    /// provides.
    #[test]
    fn random_dense_stacks_verify_clean_and_run_bit_identically(
        in_dim in 3usize..14,
        widths in proptest::collection::vec(2usize..12, 1..4),
        classes in 2usize..6,
        batch in 1usize..8,
        steps in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = micdnn::finetune::build_step_graph(in_dim, &widths, classes, batch);
        let report = g.verify();
        prop_assert!(report.is_clean(), "stack {in_dim}->{widths:?}->{classes}:\n{report}");

        let (x, labels) = random_batch(batch, in_dim, classes, seed);
        let mut sizes = vec![in_dim];
        sizes.extend_from_slice(&widths);
        let run = |graph: bool| {
            let ctx = ExecCtx::native(OptLevel::Improved, 5);
            let mut net = micdnn::FineTuneNet::random(&sizes, classes, seed ^ 0x9E37);
            if graph {
                net = net.with_graph_schedule();
            }
            let losses: Vec<f64> = (0..steps)
                .map(|_| net.train_batch(&ctx, x.view(), &labels, 0.3))
                .collect();
            (losses, net)
        };
        let (serial_losses, serial) = run(false);
        let (wave_losses, wave) = run(true);
        prop_assert_eq!(serial_losses, wave_losses, "losses diverged");
        for (l, ((sw, sb), (ww, wb))) in
            serial.layer_params().iter().zip(wave.layer_params()).enumerate()
        {
            prop_assert_eq!(sw.as_slice(), ww.as_slice(), "layer {} weights diverged", l);
            prop_assert_eq!(sb, wb, "layer {} biases diverged", l);
        }
        prop_assert_eq!(serial.softmax.w.as_slice(), wave.softmax.w.as_slice());
        prop_assert_eq!(&serial.softmax.b, &wave.softmax.b);
    }

    /// The same contract for random conv+pool geometries through the CNN
    /// recipe — the stacks with no hand-rolled ancestor are held to the
    /// same bar as the paper's graphs.
    #[test]
    fn random_cnn_stacks_verify_clean_and_run_bit_identically(
        side in 6usize..13,
        kernel in 2usize..5,
        pool_pick in any::<usize>(),
        channels in 1usize..4,
        hidden in 2usize..10,
        classes in 2usize..6,
        batch in 1usize..6,
        steps in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(kernel <= side);
        let conv_side = side - kernel + 1;
        let divisors: Vec<usize> = (1..=conv_side).filter(|p| conv_side % p == 0).collect();
        let pool = divisors[pool_pick % divisors.len()];
        let cfg = micdnn::CnnConfig::new(side, channels, kernel, pool, hidden, classes);

        let g = micdnn::build_cnn_graph(cfg, batch);
        let report = g.verify();
        prop_assert!(report.is_clean(), "cnn {cfg:?} cap={batch}:\n{report}");

        let (x, labels) = random_batch(batch, cfg.input_dim(), classes, seed);
        let run = |graph: bool| {
            let ctx = ExecCtx::native(OptLevel::Improved, 5);
            let mut net = micdnn::CnnNet::new(cfg, seed ^ 0x9E37);
            if graph {
                net = net.with_graph_schedule();
            }
            let losses: Vec<f64> = (0..steps)
                .map(|_| net.train_batch(&ctx, x.view(), &labels, 0.3))
                .collect();
            (losses, net)
        };
        let (serial_losses, serial) = run(false);
        let (wave_losses, wave) = run(true);
        prop_assert_eq!(serial_losses, wave_losses, "losses diverged");
        prop_assert_eq!(serial.conv_w.as_slice(), wave.conv_w.as_slice());
        prop_assert_eq!(&serial.conv_b, &wave.conv_b);
        prop_assert_eq!(serial.dense_w.as_slice(), wave.dense_w.as_slice());
        prop_assert_eq!(&serial.dense_b, &wave.dense_b);
        prop_assert_eq!(serial.softmax.w.as_slice(), wave.softmax.w.as_slice());
        prop_assert_eq!(&serial.softmax.b, &wave.softmax.b);
    }
}
