//! Property tests for the batched serving path: for **any** arrival
//! interleaving and **any** micro-batching policy (`max_batch` ×
//! `max_wait` split), every admitted request's probabilities land
//! *bitwise* on the serial baseline — the same net's `predict_proba` on
//! that request alone. Batching is a scheduling decision; it must never
//! touch the numerics.
//!
//! This leans on the kernel row-independence contract: GEMM parallelizes
//! over disjoint row blocks of the output with a fixed per-row reduction
//! order, and the bias+sigmoid and softmax sweeps are row-local, so a row
//! computed inside a 64-row micro-batch is the same f32s as the row
//! computed alone.

use micdnn::exec::OptLevel;
use micdnn::{serve_requests, ExecCtx, FineTuneNet, Request, ServeConfig, ServeError};
use micdnn_tensor::MatView;
use proptest::prelude::*;

fn request_rows(n: usize, in_dim: usize, seed: u64) -> Vec<Vec<f32>> {
    // Deterministic, varied inputs in (0, 1) — sigmoid's working range.
    (0..n)
        .map(|i| {
            (0..in_dim)
                .map(|j| {
                    let h = seed
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add((i * in_dim + j) as u64);
                    ((h >> 33) % 1000) as f32 / 1001.0
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any arrival pattern under any batching split: outputs bitwise
    /// equal to the serial per-request forward pass.
    #[test]
    fn batched_serving_is_bitwise_serial(
        n in 1usize..24,
        max_batch in 1usize..12,
        // Gap scale spans "all simultaneous" to "fully spread".
        gaps in proptest::collection::vec(0u32..3, 1..24),
        max_wait_us in 0u64..2000,
        seed in any::<u64>(),
    ) {
        let in_dim = 20;
        let net = FineTuneNet::random(&[in_dim, 12, 8], 5, seed % 1000);
        let ctx = ExecCtx::native(OptLevel::Improved, 0);

        let rows = request_rows(n, in_dim, seed);
        let mut t = 0.0f64;
        let requests: Vec<Request> = rows
            .iter()
            .enumerate()
            .map(|(i, input)| {
                t += gaps[i % gaps.len()] as f64 * 1e-4;
                Request { arrival_secs: t, input: input.clone() }
            })
            .collect();

        let cfg = ServeConfig {
            max_batch,
            max_wait_secs: max_wait_us as f64 * 1e-6,
            queue_cap: n.max(1), // admit everything: numerics are the subject
        };
        let run = serve_requests(&net, &ctx, &cfg, &requests).unwrap();
        prop_assert_eq!(run.report.completed as usize, n);
        prop_assert_eq!(run.report.rejected, 0);
        prop_assert_eq!(run.report.failed, 0);

        for (i, outcome) in run.outcomes.iter().enumerate() {
            let got = outcome.result.as_ref().expect("completed");
            let serial = net.predict_proba(&ctx, MatView::new(&rows[i], 1, in_dim));
            prop_assert_eq!(
                got.as_slice(),
                serial.as_slice(),
                "request {} diverged from the serial forward pass", i
            );
        }
    }

    /// Backpressure accounting: with a tight queue in front of a burst,
    /// every request is either answered bitwise-correctly or rejected
    /// with the typed overload error — never lost, never mangled.
    #[test]
    fn overload_never_loses_or_mangles_requests(
        n in 2usize..32,
        queue_cap in 1usize..6,
        seed in any::<u64>(),
    ) {
        let in_dim = 20;
        let net = FineTuneNet::random(&[in_dim, 10], 3, seed % 1000);
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let rows = request_rows(n, in_dim, seed);
        // Worst case: the whole load lands at t=0.
        let requests: Vec<Request> = rows
            .iter()
            .map(|input| Request { arrival_secs: 0.0, input: input.clone() })
            .collect();
        let cfg = ServeConfig { max_batch: 2, max_wait_secs: 0.0, queue_cap };
        let run = serve_requests(&net, &ctx, &cfg, &requests).unwrap();

        prop_assert_eq!(run.outcomes.len(), n);
        let r = &run.report;
        prop_assert_eq!((r.completed + r.rejected + r.failed) as usize, n);
        prop_assert_eq!(r.failed, 0);
        prop_assert_eq!(r.completed as usize, queue_cap.min(n));
        for (i, outcome) in run.outcomes.iter().enumerate() {
            match &outcome.result {
                Ok(probs) => {
                    let serial = net.predict_proba(&ctx, MatView::new(&rows[i], 1, in_dim));
                    prop_assert_eq!(probs.as_slice(), serial.as_slice());
                }
                Err(ServeError::Overloaded { queue_cap: cap }) => {
                    prop_assert_eq!(*cap, queue_cap);
                }
                Err(e) => prop_assert!(false, "unexpected error for request {}: {}", i, e),
            }
        }
    }
}
