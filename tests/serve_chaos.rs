//! Chaos suite for the serving path (requires `--features failpoints`).
//!
//! The contract under test is the serve loop's degradation bound: a
//! `kernel.nan` excursion inside one micro-batch fails **exactly the one
//! request** whose lane was poisoned — with a typed
//! [`ServeError::Poisoned`] — while the server stays up, every other
//! request in the same batch returns bit-identical probabilities, and
//! batches before and after the poisoned one are untouched.
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`REGISTRY_LOCK`] and disarms on entry and exit, mirroring the
//! training chaos suite.

use micdnn::exec::OptLevel;
use micdnn::{faults, serve_requests, ExecCtx, FineTuneNet, Request, ServeConfig, ServeError};
use micdnn_tensor::MatView;
use parking_lot::Mutex;
use std::time::Duration;

/// Serializes tests that arm the process-global failpoint registry.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` on a helper thread and panics if it does not finish in time.
fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("watchdog: {name} did not finish within 60s"),
    }
}

const IN_DIM: usize = 20;

fn net() -> FineTuneNet {
    FineTuneNet::random(&[IN_DIM, 12, 8], 4, 7)
}

fn burst_requests(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            arrival_secs: 0.0,
            input: (0..IN_DIM)
                .map(|j| ((i * 31 + j * 7) % 17) as f32 / 17.0)
                .collect(),
        })
        .collect()
}

/// One poisoned batch degrades one request, not the process.
#[test]
fn kernel_nan_fails_exactly_one_request_and_server_stays_up() {
    let _guard = REGISTRY_LOCK.lock();
    faults::clear_all();
    let outcome = with_watchdog("serve under kernel.nan", || {
        let n = net();
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let requests = burst_requests(16);
        let cfg = ServeConfig {
            max_batch: 4,
            max_wait_secs: 0.0,
            queue_cap: 64,
        };
        // Arm: fire once, on the second batch (batches are the only
        // kernel.nan site in this process, so occurrence 1 = batch #2).
        faults::configure("kernel.nan", "1@1").unwrap();
        let run = serve_requests(&n, &ctx, &cfg, &requests).unwrap();
        faults::clear_all();
        // Baseline for bit-identity of the survivors.
        let clean = serve_requests(&n, &ctx, &cfg, &requests).unwrap();
        (run, clean)
    });
    faults::clear_all();
    let (run, clean) = outcome;

    assert_eq!(run.report.failed, 1, "exactly one request must fail");
    assert_eq!(run.report.completed, 15);
    assert_eq!(run.report.rejected, 0);
    assert_eq!(run.report.batches, 4);

    // The poisoned lane is the first row of the second batch (requests
    // are drained in arrival order, 4 per batch).
    let failed: Vec<usize> = run
        .outcomes
        .iter()
        .filter(|o| o.result.is_err())
        .map(|o| o.index)
        .collect();
    assert_eq!(failed, vec![4], "poison lands on batch 2's first lane");
    match &run.outcomes[4].result {
        Err(ServeError::Poisoned { detail }) => {
            assert!(
                detail.contains("non-finite"),
                "typed poison cause: {detail}"
            )
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }

    // Every surviving request — including the poisoned batch's other
    // three lanes — is bit-identical to the fault-free run.
    for (o, c) in run.outcomes.iter().zip(clean.outcomes.iter()) {
        if o.index == 4 {
            assert!(c.result.is_ok(), "baseline run is fault-free");
            continue;
        }
        assert_eq!(
            o.result.as_ref().unwrap().as_slice(),
            c.result.as_ref().unwrap().as_slice(),
            "request {} drifted under a fault in another lane",
            o.index
        );
    }
}

/// Repeated injections across a long run: the server answers everything
/// that wasn't poisoned and never panics or hangs.
#[test]
fn server_survives_a_fault_storm() {
    let _guard = REGISTRY_LOCK.lock();
    faults::clear_all();
    let run = with_watchdog("serve under fault storm", || {
        let n = net();
        let ctx = ExecCtx::native(OptLevel::Improved, 0);
        let requests = burst_requests(32);
        let cfg = ServeConfig {
            max_batch: 4,
            max_wait_secs: 0.0,
            queue_cap: 64,
        };
        // The first four of the run's 8 batches are poisoned.
        faults::configure("kernel.nan", "4@0").unwrap();
        let run = serve_requests(&n, &ctx, &cfg, &requests).unwrap();
        faults::clear_all();
        run
    });
    faults::clear_all();

    assert_eq!(run.report.batches, 8);
    assert_eq!(run.report.failed, 4, "one failure per poisoned batch");
    assert_eq!(run.report.completed, 28);
    assert_eq!(
        run.report.completed + run.report.rejected + run.report.failed,
        32
    );
    // Survivors still match the serial baseline bitwise.
    let n = net();
    let ctx = ExecCtx::native(OptLevel::Improved, 0);
    for o in run.outcomes.iter().filter(|o| o.result.is_ok()) {
        let input: Vec<f32> = burst_requests(32)[o.index].input.clone();
        let serial = n.predict_proba(&ctx, MatView::new(&input, 1, IN_DIM));
        assert_eq!(o.result.as_ref().unwrap().as_slice(), serial.as_slice());
    }
}
