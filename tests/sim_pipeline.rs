//! Integration tests of the simulated offload pipeline: platform
//! comparisons, transfer overlap, device-memory limits, and trace
//! accounting — the machinery every reproduced figure rests on.

use micdnn::analytic::{estimate, Algo, Workload};
use micdnn::train::{train_dataset, train_stream, AeModel, TrainConfig, TrainError};
use micdnn::{AeConfig, ExecCtx, OptLevel, SparseAutoencoder};
use micdnn_data::{Dataset, GeneratorSource};
use micdnn_sim::{EventKind, Link, Platform};
use micdnn_tensor::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn data(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::new(Mat::from_fn(n, dim, |_, _| rng.gen_range(0.1..0.9)))
}

#[test]
fn ladder_ordering_holds_under_execution() {
    // Execute (not just model) a small training run at every rung on the
    // simulated Phi: each rung must be at least as fast as the previous.
    let ds = data(200, 48, 1);
    let cfg = AeConfig::new(48, 32);
    let tc = TrainConfig {
        batch_size: 50,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let mut last = f64::INFINITY;
    for lvl in OptLevel::ladder() {
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 2));
        let ctx = ExecCtx::simulated(lvl, Platform::xeon_phi(), 3);
        let report = train_dataset(&mut model, &ctx, &ds, &tc, 2).unwrap();
        assert!(
            report.sim_total_secs <= last,
            "{lvl:?} slower than previous rung: {} > {last}",
            report.sim_total_secs
        );
        last = report.sim_total_secs;
    }
}

#[test]
fn phi_beats_cpu_single_core_in_executed_sim() {
    let ds = data(300, 64, 4);
    let cfg = AeConfig::new(64, 128);
    let tc = TrainConfig {
        batch_size: 100,
        chunk_rows: 300,
        ..TrainConfig::default()
    };
    let run = |platform: Platform, lvl: OptLevel| {
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 5));
        let ctx = ExecCtx::simulated(lvl, platform, 6);
        train_dataset(&mut model, &ctx, &ds, &tc, 1)
            .unwrap()
            .sim_total_secs
    };
    let phi = run(Platform::xeon_phi(), OptLevel::Improved);
    let cpu = run(Platform::cpu_single_core(), OptLevel::Improved);
    assert!(phi < cpu, "phi {phi} not faster than single core {cpu}");
}

#[test]
fn double_buffering_hides_transfer_in_executed_run() {
    // Slow link + nontrivial compute: the double-buffered run must be
    // faster and report hidden transfer.
    let dim = 96;
    let chunk_rows = 100;
    let make_source = || {
        GeneratorSource::new(
            move |i| data(chunk_rows, dim, 100 + i as u64).into_matrix(),
            chunk_rows,
            8,
        )
    };
    let cfg = AeConfig::new(dim, 1024);
    let slow_link = Link {
        latency_s: 0.0,
        wire_gbs: 0.005, // ~7.7 ms per 38 KB chunk: just under compute
        host_pipeline_gbs: 0.005,
    };
    let run = |double_buffered: bool| {
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 7));
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 8);
        let tc = TrainConfig {
            batch_size: 25,
            chunk_rows,
            double_buffered,
            link: slow_link,
            ..TrainConfig::default()
        };
        train_stream(&mut model, &ctx, make_source(), &tc).unwrap()
    };
    let buffered = run(true);
    let naive = run(false);
    assert!(
        buffered.sim_total_secs < naive.sim_total_secs,
        "double buffering did not help: {} vs {}",
        buffered.sim_total_secs,
        naive.sim_total_secs
    );
    assert!(buffered.stream.hidden_fraction() > 0.3);
    assert_eq!(naive.stream.hidden_fraction(), 0.0);
}

#[test]
fn trace_accounts_for_compute_and_transfer() {
    let ds = data(120, 32, 9);
    let cfg = AeConfig::new(32, 16);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 10));
    let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 11).with_trace();
    let tc = TrainConfig {
        batch_size: 40,
        chunk_rows: 60,
        ..TrainConfig::default()
    };
    let report = train_dataset(&mut model, &ctx, &ds, &tc, 1).unwrap();
    let trace = ctx.trace();
    assert!(!trace.is_empty());
    let compute = trace.total_compute();
    let stall = trace.total(EventKind::Stall);
    // Compute + exposed stalls must equal the clock.
    let accounted = compute + stall;
    let rel = (accounted - report.sim_total_secs).abs() / report.sim_total_secs;
    assert!(
        rel < 1e-6,
        "trace accounts for {accounted} of {} simulated seconds",
        report.sim_total_secs
    );
    assert!(trace.total(EventKind::Transfer) > 0.0);
}

#[test]
fn paper_scale_fig8_point_respects_device_memory() {
    // The largest Fig. 8 workload (1M x 1024 streamed in 10k chunks) must
    // fit the 8 GB card with double buffering: 2 chunks of 41 MB + model.
    let w = Workload {
        algo: Algo::Autoencoder,
        n_visible: 1024,
        n_hidden: 4096,
        examples: 1_000_000,
        batch: 1000,
        chunk_rows: 10_000,
        passes: 1,
    };
    let chunk_bytes = w.chunk_bytes();
    let cfg = AeConfig::new(w.n_visible, w.n_hidden);
    let resident = cfg.param_bytes() * 2 + 2 * chunk_bytes;
    assert!(
        resident < 8 << 30,
        "paper workload would not fit the card: {resident} bytes"
    );
    // And the estimate is finite and positive.
    let e = estimate(
        OptLevel::Improved,
        Platform::xeon_phi(),
        Link::pcie_gen2(),
        true,
        &w,
    );
    assert!(e.total_secs.is_finite() && e.total_secs > 0.0);
}

#[test]
fn oom_reported_not_panicked() {
    let mut platform = Platform::xeon_phi();
    platform.spec.mem_capacity_bytes = 100_000; // 100 KB card
    let ds = data(100, 64, 12);
    let cfg = AeConfig::new(64, 64);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 13));
    let ctx = ExecCtx::simulated(OptLevel::Improved, platform, 14);
    let err = train_dataset(&mut model, &ctx, &ds, &TrainConfig::default(), 1).unwrap_err();
    match err {
        TrainError::DeviceMemory(e) => {
            assert!(e.available <= 100_000);
            assert!(!e.to_string().is_empty());
        }
        other => panic!("expected DeviceMemory, got {other:?}"),
    }
}

#[test]
fn thirty_vs_sixty_cores_scales_executed_runs() {
    // Needs matrices big enough that GEMM (which scales with cores)
    // dominates barrier costs (which barely change between 30 and 60).
    let ds = data(400, 512, 15);
    let cfg = AeConfig::new(512, 1024);
    let tc = TrainConfig {
        batch_size: 200,
        chunk_rows: 400,
        ..TrainConfig::default()
    };
    let run = |cores: u32| {
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 16));
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi_cores(cores), 17);
        train_dataset(&mut model, &ctx, &ds, &tc, 1)
            .unwrap()
            .sim_total_secs
    };
    let t60 = run(60);
    let t30 = run(30);
    let ratio = t30 / t60;
    assert!(
        ratio > 1.3 && ratio < 2.2,
        "30-core run should be ~1.5-2x slower, got {ratio}"
    );
}
