//! Golden-file tests for the exported observability formats.
//!
//! The profile report (`micdnn-profile-v1`) and the Chrome trace export
//! are consumed outside this repo (dashboards, `chrome://tracing`), so
//! their wire shape is pinned byte-for-byte against committed golden
//! files. A deliberate schema change must update the golden alongside a
//! version bump; an accidental one fails here first.

use micdnn::{ProfileReport, Profiler};
use micdnn_kernels::{OpCost, OpKind};
use micdnn_sim::{chrome_trace_json, EventKind, StreamStats, Trace};

const PROFILE_GOLDEN: &str = include_str!("golden/profile_report.json");
const TRACE_GOLDEN: &str = include_str!("golden/chrome_trace.json");

/// With `UPDATE_GOLDEN=1`, rewrites the golden file instead of comparing.
/// Returns true when the caller should skip the assertion.
fn maybe_update(name: &str, text: &str) -> bool {
    if std::env::var_os("UPDATE_GOLDEN").is_none() {
        return false;
    }
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, text).unwrap();
    eprintln!("updated {path}");
    true
}

/// A fully deterministic profile: fixed ops, phases, and stream stats.
fn sample_report() -> ProfileReport {
    let p = Profiler::new();
    p.record_op(&OpCost::gemm(1000, 4096, 1024, true), 0.50);
    p.record_op(&OpCost::gemm(1000, 1024, 4096, true), 0.55);
    p.record_op(&OpCost::sigmoid(4_096_000), 0.02);
    p.record_op(
        &OpCost::elementwise(4_096_000, 2, 2).with_label("axpy"),
        0.01,
    );
    p.record_phase("load", 0.10, 0.001);
    p.record_phase("forward", 0.60, 0.002);
    p.record_phase("backward", 0.70, 0.003);
    p.record_phase("update", 0.05, 0.001);
    p.record_stream(StreamStats {
        chunks: 20,
        bytes: 20 * 164_000_000,
        transfer_secs: 260.0,
        stall_secs: 13.0,
    });
    p.report(Some(2021.76), 1.45)
}

fn sample_trace() -> Trace {
    let t = Trace::new(true);
    t.push(0.0, 13.0, EventKind::Transfer, "chunk 0");
    t.push(0.0, 13.0, EventKind::Stall, "");
    t.push(
        13.0,
        81.0,
        EventKind::Compute(OpKind::Gemm),
        "train chunk 0",
    );
    t.push(13.0, 26.0, EventKind::Transfer, "chunk 1");
    t.push(81.0, 81.5, EventKind::Sync, "barrier");
    t
}

#[test]
fn profile_report_matches_golden() {
    let text = serde_json::to_string_pretty(&sample_report()).unwrap() + "\n";
    if maybe_update("profile_report.json", &text) {
        return;
    }
    assert_eq!(
        text, PROFILE_GOLDEN,
        "profile JSON schema drifted from tests/golden/profile_report.json; \
         if intentional, bump the schema string and refresh the golden file"
    );
}

#[test]
fn profile_golden_deserializes_and_roundtrips() {
    let back: ProfileReport = serde_json::from_str(PROFILE_GOLDEN).unwrap();
    assert_eq!(back, sample_report());
    // Schema marker travels with every report.
    assert_eq!(back.schema, "micdnn-profile-v1");
    let again = serde_json::to_string_pretty(&back).unwrap() + "\n";
    assert_eq!(again, PROFILE_GOLDEN);
}

#[test]
fn chrome_trace_matches_golden() {
    let text = chrome_trace_json(&sample_trace());
    if maybe_update("chrome_trace.json", &text) {
        return;
    }
    assert_eq!(
        text, TRACE_GOLDEN,
        "Chrome trace shape drifted from tests/golden/chrome_trace.json"
    );
}

#[test]
fn committed_bench_artifacts_parse_and_carry_schema() {
    // The repo commits the bench trajectory emitted by `repro --bench-dir`;
    // they must stay loadable and carry the current schema marker.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for name in ["BENCH_table1.json", "BENCH_overlap.json"] {
        let path = format!("{root}/{name}");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing committed artifact {name}: {e}"));
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            v.get_field("schema").and_then(serde_json::Value::as_str),
            Some("micdnn-bench-v1"),
            "{name} lost its schema marker"
        );
        assert!(v.get_field("data").is_some(), "{name} lost its data field");
    }
    let trace = std::fs::read_to_string(format!("{root}/TRACE_overlap.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&trace).unwrap();
    assert!(v.get_field("traceEvents").is_some());
}
