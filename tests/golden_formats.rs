//! Golden-file tests for the exported observability formats.
//!
//! The profile report (`micdnn-profile-v2`) and the Chrome trace export
//! are consumed outside this repo (dashboards, `chrome://tracing`), so
//! their wire shape is pinned byte-for-byte against committed golden
//! files. A deliberate schema change must update the golden alongside a
//! version bump; an accidental one fails here first.

use micdnn::model_io::{load_autoencoder, load_rbm, save_autoencoder, save_rbm};
use micdnn::train::AeModel;
use micdnn::{
    load_checkpoint, save_checkpoint, AeConfig, Optimizer, ProfileReport, Profiler, Rbm, RbmConfig,
    Rule, Schedule, SparseAutoencoder, TrainProgress,
};
use micdnn_kernels::{OpCost, OpKind};
use micdnn_sim::{chrome_trace_json, EventKind, StreamStats, Trace};
use micdnn_tensor::Mat;

const PROFILE_GOLDEN: &str = include_str!("golden/profile_report.json");
const TRACE_GOLDEN: &str = include_str!("golden/chrome_trace.json");
const VERIFY_GOLDEN: &str = include_str!("golden/verify_report.json");

/// With `UPDATE_GOLDEN=1`, rewrites the golden file instead of comparing.
/// Returns true when the caller should skip the assertion.
fn maybe_update(name: &str, text: &str) -> bool {
    if std::env::var_os("UPDATE_GOLDEN").is_none() {
        return false;
    }
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, text).unwrap();
    eprintln!("updated {path}");
    true
}

/// Binary variant of [`maybe_update`] for the model-format goldens.
fn maybe_update_bytes(name: &str, bytes: &[u8]) -> bool {
    if std::env::var_os("UPDATE_GOLDEN").is_none() {
        return false;
    }
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, bytes).unwrap();
    eprintln!("updated {path}");
    true
}

fn read_golden_bytes(name: &str) -> Vec<u8> {
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} (regenerate with UPDATE_GOLDEN=1): {e}")
    })
}

/// An autoencoder with every parameter set to a closed-form value, so the
/// serialized bytes depend on nothing but the wire format itself.
fn pinned_ae() -> SparseAutoencoder {
    let cfg = AeConfig::new(5, 3);
    let mut ae = SparseAutoencoder::new(cfg, 0);
    ae.w1 = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.125 - 0.5);
    ae.w2 = Mat::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * -0.0625 + 0.25);
    ae.b1 = (0..3).map(|i| i as f32 * 0.5).collect();
    ae.b2 = (0..5).map(|i| i as f32 * -0.25).collect();
    ae
}

fn pinned_rbm() -> Rbm {
    let cfg = RbmConfig::new(4, 3).with_cd_steps(2);
    let mut rbm = Rbm::new(cfg, 0);
    rbm.w = Mat::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.25 - 1.0);
    rbm.b_vis = (0..4).map(|i| i as f32 * 0.125).collect();
    rbm.c_hid = (0..3).map(|i| 1.0 - i as f32 * 0.5).collect();
    rbm
}

/// The model container format (`MICDNN01`, little-endian, length-prefixed
/// tensors) is pinned byte-for-byte: files written by older builds must
/// keep loading, so any byte-level drift — e.g. from a rewrite of the
/// tensor I/O path — must fail here rather than silently fork the format.
#[test]
fn ae_wire_format_matches_golden() {
    let mut bytes = Vec::new();
    save_autoencoder(&pinned_ae(), &mut bytes).unwrap();
    if maybe_update_bytes("model_ae.bin", &bytes) {
        return;
    }
    assert_eq!(
        bytes,
        read_golden_bytes("model_ae.bin"),
        "AE wire format drifted from tests/golden/model_ae.bin"
    );
}

#[test]
fn rbm_wire_format_matches_golden() {
    let mut bytes = Vec::new();
    save_rbm(&pinned_rbm(), &mut bytes).unwrap();
    if maybe_update_bytes("model_rbm.bin", &bytes) {
        return;
    }
    assert_eq!(
        bytes,
        read_golden_bytes("model_rbm.bin"),
        "RBM wire format drifted from tests/golden/model_rbm.bin"
    );
}

#[test]
fn checkpoint_wire_format_matches_golden() {
    let cfg = AeConfig::new(5, 3);
    let slot_lens = SparseAutoencoder::optimizer_slots(&cfg);
    let state = slot_lens
        .iter()
        .enumerate()
        .map(|(s, &len)| (0..len).map(|i| (s * 100 + i) as f32 * 0.01).collect())
        .collect();
    let opt = Optimizer::restore(
        Rule::Momentum { mu: 0.9 },
        Schedule::Step {
            base: 0.2,
            factor: 0.5,
            every: 100,
        },
        34,
        state,
    );
    let model = AeModel::new(pinned_ae()).with_optimizer(opt);
    let progress = TrainProgress {
        layer: 1,
        epoch: 2,
        batches: 34,
        examples: 850,
    };
    let mut bytes = Vec::new();
    save_checkpoint(&mut bytes, &model, 42, 17, &progress).unwrap();
    if maybe_update_bytes("checkpoint.bin", &bytes) {
        return;
    }
    assert_eq!(
        bytes,
        read_golden_bytes("checkpoint.bin"),
        "checkpoint wire format drifted from tests/golden/checkpoint.bin \
         (a deliberate layout change must bump CHECKPOINT_VERSION)"
    );
}

/// The committed goldens must themselves load — the pin is only useful if
/// the bytes on disk represent real, readable files.
#[test]
fn golden_model_files_load_back() {
    let ae = load_autoencoder(&mut read_golden_bytes("model_ae.bin").as_slice()).unwrap();
    assert_eq!(ae.w1.as_slice(), pinned_ae().w1.as_slice());
    let rbm = load_rbm(&mut read_golden_bytes("model_rbm.bin").as_slice()).unwrap();
    assert_eq!(rbm.config().cd_steps, 2);
    assert_eq!(rbm.w.as_slice(), pinned_rbm().w.as_slice());
    let ckpt = load_checkpoint(&mut read_golden_bytes("checkpoint.bin").as_slice()).unwrap();
    assert_eq!(ckpt.rng_seed, 42);
    assert_eq!(ckpt.rng_cursor, 17);
    assert_eq!(ckpt.progress.batches, 34);
    let model = ckpt.into_ae().expect("AE checkpoint");
    assert_eq!(model.optimizer().unwrap().steps(), 34);
}

/// A fully deterministic profile: fixed ops, phases, and stream stats.
fn sample_report() -> ProfileReport {
    let p = Profiler::new();
    p.record_op(&OpCost::gemm(1000, 4096, 1024, true), 0.50);
    p.record_op(&OpCost::gemm(1000, 1024, 4096, true), 0.55);
    p.record_op(&OpCost::sigmoid(4_096_000), 0.02);
    p.record_op(
        &OpCost::elementwise(4_096_000, 2, 2).with_label("axpy"),
        0.01,
    );
    p.record_phase("load", 0.10, 0.001);
    p.record_phase("forward", 0.60, 0.002);
    p.record_phase("backward", 0.70, 0.003);
    p.record_phase("update", 0.05, 0.001);
    p.record_stream(StreamStats {
        chunks: 20,
        bytes: 20 * 164_000_000,
        transfer_secs: 260.0,
        stall_secs: 13.0,
        ..StreamStats::default()
    });
    // v2: per-label latency distributions (the serving path's section).
    p.record_latency("serve.request", 0.004);
    p.record_latency("serve.request", 0.001);
    p.record_latency("serve.request", 0.016);
    p.record_latency("serve.request", 0.002);
    p.report(Some(2021.76), 1.45)
}

fn sample_trace() -> Trace {
    let t = Trace::new(true);
    t.push(0.0, 13.0, EventKind::Transfer, "chunk 0");
    t.push(0.0, 13.0, EventKind::Stall, "");
    t.push(
        13.0,
        81.0,
        EventKind::Compute(OpKind::Gemm),
        "train chunk 0",
    );
    t.push(13.0, 26.0, EventKind::Transfer, "chunk 1");
    t.push(81.0, 81.5, EventKind::Sync, "barrier");
    t
}

#[test]
fn profile_report_matches_golden() {
    let text = serde_json::to_string_pretty(&sample_report()).unwrap() + "\n";
    if maybe_update("profile_report.json", &text) {
        return;
    }
    assert_eq!(
        text, PROFILE_GOLDEN,
        "profile JSON schema drifted from tests/golden/profile_report.json; \
         if intentional, bump the schema string and refresh the golden file"
    );
}

#[test]
fn profile_golden_deserializes_and_roundtrips() {
    let back: ProfileReport = serde_json::from_str(PROFILE_GOLDEN).unwrap();
    assert_eq!(back, sample_report());
    // Schema marker travels with every report.
    assert_eq!(back.schema, "micdnn-profile-v2");
    let again = serde_json::to_string_pretty(&back).unwrap() + "\n";
    assert_eq!(again, PROFILE_GOLDEN);
}

#[test]
fn chrome_trace_matches_golden() {
    let text = chrome_trace_json(&sample_trace());
    if maybe_update("chrome_trace.json", &text) {
        return;
    }
    assert_eq!(
        text, TRACE_GOLDEN,
        "Chrome trace shape drifted from tests/golden/chrome_trace.json"
    );
}

/// The certification report (`micdnn-verify-v1`) is diffed in CI against
/// the committed `VERIFY_report.json`, so its wire shape is pinned on a
/// small CD graph: every field of the doc model — device peaks, wave
/// counts, budget, findings — appears in the golden bytes.
#[test]
fn verify_report_matches_golden() {
    use micdnn::cd_graph::build_cd_graph;
    let g = build_cd_graph(4, 3, 2, 1);
    let bundle = micdnn::CertifyBundle::new(vec![g
        .certify(micdnn::DEFAULT_MEM_BUDGET)
        .to_doc("cd1-step-4x3-b2")]);
    let text = serde_json::to_string_pretty(&bundle).unwrap() + "\n";
    if maybe_update("verify_report.json", &text) {
        return;
    }
    assert_eq!(
        text, VERIFY_GOLDEN,
        "certification report schema drifted from tests/golden/verify_report.json; \
         if intentional, bump micdnn-verify-v1 and refresh the golden file"
    );
}

/// The committed repo-root report must carry the schema marker and certify
/// every shipped graph clean — CI regenerates it and diffs byte-for-byte,
/// but the commit itself should never go stale or dirty.
#[test]
fn committed_verify_report_is_clean_and_carries_schema() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{root}/VERIFY_report.json"))
        .expect("missing committed VERIFY_report.json (regenerate with `micdnn verify --json`)");
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(
        v.get_field("schema").and_then(serde_json::Value::as_str),
        Some(micdnn::VERIFY_SCHEMA),
        "VERIFY_report.json lost its schema marker"
    );
    let graphs = v
        .get_field("graphs")
        .and_then(serde_json::Value::as_array)
        .expect("graphs array");
    assert!(!graphs.is_empty());
    for g in graphs {
        let name = g.get_field("graph").and_then(serde_json::Value::as_str);
        assert_eq!(
            g.get_field("errors").and_then(serde_json::Value::as_u64),
            Some(0),
            "committed report shows errors for {name:?}"
        );
    }
}

#[test]
fn committed_bench_artifacts_parse_and_carry_schema() {
    // The repo commits the bench trajectory emitted by `repro --bench-dir`;
    // they must stay loadable and carry the current schema marker.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for name in [
        "BENCH_table1.json",
        "BENCH_overlap.json",
        "BENCH_graph.json",
        "BENCH_conv.json",
        "BENCH_serve.json",
    ] {
        let path = format!("{root}/{name}");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing committed artifact {name}: {e}"));
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            v.get_field("schema").and_then(serde_json::Value::as_str),
            Some("micdnn-bench-v1"),
            "{name} lost its schema marker"
        );
        assert!(v.get_field("data").is_some(), "{name} lost its data field");
    }
    let trace = std::fs::read_to_string(format!("{root}/TRACE_overlap.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&trace).unwrap();
    assert!(v.get_field("traceEvents").is_some());
}
