//! Chaos suite: seeded failpoint schedules over supervised AE and RBM
//! runs (requires `--features failpoints`).
//!
//! The property under test is the supervisor's contract: a run under an
//! injected fault schedule either **completes bit-identically** to the
//! fault-free run at the same seed (when the faults are transient), or
//! fails with a **typed** [`TrainError`] — never a panic and never a
//! hang. Every run is wrapped in a wall-clock watchdog, so a hang fails
//! the test instead of wedging CI.
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`REGISTRY_LOCK`] and disarms on entry and exit.

use micdnn::supervise::train_dataset_supervised;
use micdnn::train::{train_dataset, TrainConfig, TrainError};
use micdnn::{faults, AeConfig, AeModel, ExecCtx, OptLevel, SparseAutoencoder};
use micdnn::{
    CnnConfig, CnnModel, CnnNet, DataParallelAe, IncidentLog, MultiDevConfig, Rbm, RbmConfig,
    RbmModel, SupervisorPolicy,
};
use micdnn_data::Dataset;
use micdnn_tensor::Mat;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Serializes tests that arm the process-global failpoint registry.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` on a helper thread and panics if it does not finish in time —
/// a hung run must fail the suite, not wedge it.
fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("watchdog: {name} did not finish within 60s"),
    }
}

fn toy_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::new(Mat::from_fn(n, dim, |_, _| rng.gen_range(0.1..0.9)))
}

/// A config whose supervisor preserves bit-identity across rollbacks
/// (`lr_backoff` 1.0 — replayed batches recompute exactly).
fn chaos_cfg() -> TrainConfig {
    TrainConfig {
        batch_size: 20,
        chunk_rows: 40,
        supervisor: Some(SupervisorPolicy {
            lr_backoff: 1.0,
            snapshot_every: 5,
            ..SupervisorPolicy::default()
        }),
        ..TrainConfig::default()
    }
}

fn ae_model() -> AeModel {
    AeModel::new(SparseAutoencoder::new(AeConfig::new(12, 6), 17))
}

fn rbm_model() -> RbmModel {
    RbmModel::new(Rbm::new(RbmConfig::new(12, 8), 23)).with_momentum(0.5)
}

/// Supervised AE run at seed 11; returns final weights and the log.
fn run_ae() -> (Vec<f32>, IncidentLog) {
    let ds = toy_dataset(120, 12, 11);
    let mut model = ae_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 11);
    let (_, log) = train_dataset_supervised(&mut model, &ctx, &ds, &chaos_cfg(), 3).unwrap();
    (model.ae.w1.as_slice().to_vec(), log)
}

/// Supervised RBM run at seed 13; returns final weights and the log.
fn run_rbm() -> (Vec<f32>, IncidentLog) {
    let mut ds = toy_dataset(120, 12, 13);
    ds.binarize(0.5);
    let mut model = rbm_model();
    let ctx = ExecCtx::native(OptLevel::Improved, 13);
    let (_, log) = train_dataset_supervised(&mut model, &ctx, &ds, &chaos_cfg(), 3).unwrap();
    (model.rbm.w.as_slice().to_vec(), log)
}

/// Supervised CNN run at seed 19, wave-scheduled through the layer-IR
/// graph; returns final conv filters and the log. The stream labels are a
/// pure function of the checkpointed cursor, so a supervisor rollback
/// replays them exactly.
fn run_cnn() -> (Vec<f32>, IncidentLog) {
    let cfg = CnnConfig::new(8, 3, 3, 2, 10, 4);
    let ds = toy_dataset(120, cfg.input_dim(), 19);
    let mut model = CnnModel::new(CnnNet::new(cfg, 19), ds.len() as u64).with_graph_schedule();
    let ctx = ExecCtx::native(OptLevel::Improved, 19);
    let (_, log) = train_dataset_supervised(&mut model, &ctx, &ds, &chaos_cfg(), 3).unwrap();
    (model.net.conv_w.as_slice().to_vec(), log)
}

/// The acceptance schedule: the loader dies twice and one batch arrives
/// NaN-poisoned, yet the run completes bit-identical to the fault-free
/// run at the same seed, with the recovery enumerated in the log.
#[test]
fn loader_deaths_plus_nan_batch_recover_bit_identically() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean_ae, clean_log) = with_watchdog("ae baseline", run_ae);
    assert!(clean_log.incidents.is_empty(), "{:?}", clean_log.incidents);

    faults::configure("loader.panic", "2").unwrap();
    faults::configure("kernel.nan", "1@1").unwrap();
    let (faulted_ae, log) = with_watchdog("ae faulted", run_ae);
    faults::clear_all();

    assert_eq!(clean_ae, faulted_ae, "recovered run diverged from baseline");
    assert!(
        log.count("loader-retry") >= 2,
        "expected >=2 loader retries: {:?}",
        log.incidents
    );
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
    assert_eq!(log.count("lr-backoff"), 1, "{:?}", log.incidents);
}

/// The same contract holds for the RBM path, whose CD steps consume the
/// sampling stream (rollback must restore the RNG cursor too).
#[test]
fn rbm_recovers_bit_identically_from_transient_faults() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, clean_log) = with_watchdog("rbm baseline", run_rbm);
    assert!(clean_log.incidents.is_empty());

    faults::configure("loader.read", "1").unwrap();
    faults::configure("kernel.nan", "1@2").unwrap();
    let (faulted, log) = with_watchdog("rbm faulted", run_rbm);
    faults::clear_all();

    assert_eq!(clean, faulted, "recovered RBM diverged from baseline");
    assert!(log.count("loader-retry") >= 1, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
}

/// The same contract for the CNN: the wave-scheduled layer-IR graph runs
/// under the supervisor like any paper model — loader deaths and a NaN
/// batch roll back to a snapshot (weights, cursor and RNG together) and
/// the run lands bit-identical to the fault-free baseline.
#[test]
fn cnn_recovers_bit_identically_from_transient_faults() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, clean_log) = with_watchdog("cnn baseline", run_cnn);
    assert!(clean_log.incidents.is_empty(), "{:?}", clean_log.incidents);

    faults::configure("loader.panic", "2").unwrap();
    faults::configure("kernel.nan", "1@1").unwrap();
    let (faulted, log) = with_watchdog("cnn faulted", run_cnn);
    faults::clear_all();

    assert_eq!(clean, faulted, "recovered CNN diverged from baseline");
    assert!(log.count("loader-retry") >= 2, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
}

/// Corrupted chunks are caught by the loader's checksum check and
/// re-requested; the training loop never sees the bad payload.
#[test]
fn crc_corruption_is_transparent_to_training() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, _) = with_watchdog("crc baseline", run_ae);

    faults::configure("loader.crc", "1").unwrap();
    let (faulted, log) = with_watchdog("crc faulted", run_ae);
    faults::clear_all();

    assert_eq!(clean, faulted);
    assert!(log.count("loader-retry") >= 1, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 0, "{:?}", log.incidents);
}

/// A failed periodic checkpoint write restarts the leg from the snapshot
/// instead of killing the run.
#[test]
fn checkpoint_write_failure_restarts_and_completes() {
    use micdnn::CheckpointPolicy;
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let dir = std::env::temp_dir().join(format!("micdnn-chaos-{}", std::process::id()));
    let ds = toy_dataset(120, 12, 11);
    let cfg = TrainConfig {
        checkpoint: Some(CheckpointPolicy::new(&dir, 7)),
        ..chaos_cfg()
    };

    faults::configure("ckpt.write", "1").unwrap();
    let (weights, log) = with_watchdog("ckpt faulted", move || {
        let mut model = ae_model();
        let ctx = ExecCtx::native(OptLevel::Improved, 11);
        let (_, log) = train_dataset_supervised(&mut model, &ctx, &ds, &cfg, 3).unwrap();
        (model.ae.w1.as_slice().to_vec(), log)
    });
    faults::clear_all();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(log.count("restart"), 1, "{:?}", log.incidents);
    let (clean, _) = with_watchdog("ckpt baseline", run_ae);
    assert_eq!(clean, weights, "restarted run diverged from baseline");
}

/// An unrecoverable schedule (the source faults forever) surfaces a typed
/// error within the watchdog deadline — no panic, no hang.
#[test]
fn unrecoverable_schedule_fails_typed_within_deadline() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    faults::configure("loader.read", "1000000").unwrap();
    let err = with_watchdog("unrecoverable", || {
        let ds = toy_dataset(120, 12, 11);
        let cfg = TrainConfig {
            supervisor: Some(SupervisorPolicy {
                max_restarts: 2,
                ..SupervisorPolicy::default()
            }),
            ..chaos_cfg()
        };
        let mut model = ae_model();
        let ctx = ExecCtx::native(OptLevel::Improved, 11);
        train_dataset_supervised(&mut model, &ctx, &ds, &cfg, 3).unwrap_err()
    });
    faults::clear_all();
    match err {
        TrainError::Unrecoverable { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(
                last.contains("loader.read") || last.contains("stream"),
                "{last}"
            );
        }
        other => panic!("expected Unrecoverable, got {other:?}"),
    }
}

/// Without supervision, an injected stream failure still surfaces as a
/// typed error (the plain training loop never panics either).
#[test]
fn unsupervised_run_surfaces_typed_stream_errors() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    faults::configure("loader.read", "1000000").unwrap();
    let err = with_watchdog("unsupervised", || {
        let ds = toy_dataset(120, 12, 11);
        let mut model = ae_model();
        let ctx = ExecCtx::native(OptLevel::Improved, 11);
        train_dataset(&mut model, &ctx, &ds, &chaos_cfg(), 1).unwrap_err()
    });
    faults::clear_all();
    assert!(matches!(err, TrainError::Stream(_)), "{err:?}");
}

/// Supervised multi-device AE run at seed 11 (same data as `run_ae`);
/// returns final weights, the incident log and the surviving device count.
fn run_multidev_ae(devices: usize) -> (Vec<f32>, IncidentLog, usize) {
    let ds = toy_dataset(120, 12, 11);
    let ae = SparseAutoencoder::new(AeConfig::new(12, 6), 17);
    let mut model = DataParallelAe::new(ae, MultiDevConfig::new(devices));
    let ctx = ExecCtx::native(OptLevel::Improved, 11);
    let (_, log) = train_dataset_supervised(&mut model, &ctx, &ds, &chaos_cfg(), 3).unwrap();
    let online = model.device_set().online_count();
    (model.ae().w1.as_slice().to_vec(), log, online)
}

/// A device runs out of memory mid-leg: the victim drops offline, its
/// canonical blocks re-land on the survivors, and the run completes
/// bit-identical to both the fault-free four-device run and the
/// single-device run — with exactly one pinned `device-oom` incident.
#[test]
fn multidev_device_drop_mid_leg_recovers_bit_identically() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, clean_log, online) = with_watchdog("mdp baseline", || run_multidev_ae(4));
    assert!(clean_log.incidents.is_empty(), "{:?}", clean_log.incidents);
    assert_eq!(online, 4);
    let (single, _, _) = with_watchdog("mdp single", || run_multidev_ae(1));
    assert_eq!(clean, single, "device-count invariance broken fault-free");

    // 18 supervised batches; the OOM lands on the 8th — mid-leg.
    faults::configure("device.oom", "1@7").unwrap();
    let (faulted, log, online) = with_watchdog("mdp oom", || run_multidev_ae(4));
    faults::clear_all();

    assert_eq!(clean, faulted, "post-drop run diverged from baseline");
    assert_eq!(online, 3, "the victim must stay offline");
    assert_eq!(log.count("device-oom"), 1, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 0, "{:?}", log.incidents);
    let inc = log
        .incidents
        .iter()
        .find(|i| i.kind == "device-oom")
        .expect("device-oom incident");
    assert!(inc.detail.contains("device 3"), "{}", inc.detail);
    assert!(inc.detail.contains("3 survivor(s)"), "{}", inc.detail);
}

/// Dropped gradient-sync transfers are retried: extra modeled sync time,
/// a pinned `link-retry` incident per drop, and untouched numerics.
#[test]
fn multidev_link_drops_retry_without_touching_numerics() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, _, _) = with_watchdog("link baseline", || run_multidev_ae(2));

    faults::configure("link.drop", "2@5").unwrap();
    let (faulted, log, online) = with_watchdog("link faulted", || run_multidev_ae(2));
    faults::clear_all();

    assert_eq!(clean, faulted, "link retries must not touch numerics");
    assert_eq!(online, 2);
    assert_eq!(log.count("link-retry"), 2, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 0, "{:?}", log.incidents);
}

/// A combined schedule — one device drop plus one NaN-poisoned chunk —
/// engages the supervisor's ladder (rollback + lr-backoff) on top of the
/// transparent re-shard, still landing bit-identical to the baseline.
#[test]
fn multidev_device_drop_plus_nan_engages_the_ladder_bit_identically() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, _, _) = with_watchdog("ladder baseline", || run_multidev_ae(4));

    faults::configure("device.oom", "1@3").unwrap();
    faults::configure("kernel.nan", "1@2").unwrap();
    let (faulted, log, _) = with_watchdog("ladder faulted", || run_multidev_ae(4));
    faults::clear_all();

    assert_eq!(clean, faulted, "ladder recovery diverged from baseline");
    assert_eq!(log.count("device-oom"), 1, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
    assert_eq!(log.count("lr-backoff"), 1, "{:?}", log.incidents);
}

// ---------------------------------------------------------------------
// Full-pipeline chaos: one RunSupervisor across stacked pre-training and
// fine-tuning, at N ∈ {1, 4} modeled devices. (Names share the
// `pipeline` prefix so CI can run this group alone.)
// ---------------------------------------------------------------------

use micdnn::{FineTuneModel, FineTuneNet, RunSupervisor, StackedAutoencoder, Stage};

/// The whole supervised pipeline at `devices` cards: every pre-training
/// layer and the fine-tune pass are legs of one [`RunSupervisor`], so the
/// ladder budget and incident log span the run. Returns a flat
/// fingerprint of every trained parameter plus the log.
fn run_pipeline(devices: usize, cfg: &TrainConfig) -> (Vec<f32>, IncidentLog) {
    let ds = toy_dataset(120, 16, 29);
    let mut stack = StackedAutoencoder::with_default_config(&[16, 10, 8], 31);
    let ctx = ExecCtx::native(OptLevel::Improved, 29);
    let mut sup = RunSupervisor::new(cfg.supervisor.clone().expect("chaos cfg")).unwrap();
    let mdcfg = MultiDevConfig::new(devices);
    sup.pretrain_multidev(&mut stack, &mdcfg, &ctx, &ds, cfg, 2)
        .unwrap();
    let net = FineTuneNet::from_stack(&stack, 4, 37);
    let mut ft = FineTuneModel::new(net, ds.len() as u64);
    sup.run_leg(&mut ft, &ctx, &ds, cfg, 2, Stage::FineTune, 0, 0)
        .unwrap();
    let mut params = Vec::new();
    for layer in stack.layers() {
        params.extend_from_slice(layer.w1.as_slice());
    }
    for (w, b) in ft.net.layer_params() {
        params.extend_from_slice(w.as_slice());
        params.extend_from_slice(b);
    }
    (params, sup.into_log())
}

/// A NaN-poisoned chunk lands in leg 2 of pre-training (the second
/// stacked layer): the ladder rolls that leg back and the pipeline
/// completes bit-identical to the fault-free run — at one device and at
/// four.
#[test]
fn pipeline_fault_into_pretrain_leg2_recovers_at_any_device_count() {
    let _g = REGISTRY_LOCK.lock();
    for devices in [1usize, 4] {
        faults::clear_all();
        let (clean, clean_log) = with_watchdog("pipeline baseline", move || {
            run_pipeline(devices, &chaos_cfg())
        });
        assert!(clean_log.incidents.is_empty(), "{:?}", clean_log.incidents);

        // 6 chunks per leg (3 per epoch × 2 passes); hit 8 = leg 2.
        faults::configure("kernel.nan", "1@8").unwrap();
        let (faulted, log) = with_watchdog("pipeline faulted", move || {
            run_pipeline(devices, &chaos_cfg())
        });
        faults::clear_all();

        assert_eq!(
            clean, faulted,
            "N={devices}: pipeline diverged from baseline"
        );
        assert_eq!(log.count("rollback"), 1, "N={devices}: {:?}", log.incidents);
        let rb = log.incidents.iter().find(|i| i.kind == "rollback").unwrap();
        assert_eq!(rb.stage, "pretrain", "{rb:?}");
    }
}

/// A fine-tune divergence rolls back the fine-tune leg only: the rollback
/// incident is stamped `finetune`, no pre-training incident exists, and
/// the final parameters still match the fault-free pipeline bitwise.
#[test]
fn pipeline_finetune_nan_rolls_back_without_rerunning_pretrain() {
    let _g = REGISTRY_LOCK.lock();
    for devices in [1usize, 4] {
        faults::clear_all();
        let (clean, _) = with_watchdog("ft baseline", move || run_pipeline(devices, &chaos_cfg()));

        faults::configure("finetune.nan", "1@7").unwrap();
        let (faulted, log) =
            with_watchdog("ft faulted", move || run_pipeline(devices, &chaos_cfg()));
        faults::clear_all();

        assert_eq!(clean, faulted, "N={devices}: fine-tune recovery diverged");
        assert_eq!(log.count("rollback"), 1, "N={devices}: {:?}", log.incidents);
        assert!(
            log.incidents
                .iter()
                .all(|i| i.kind != "rollback" || i.stage == "finetune"),
            "rollback outside fine-tune: {:?}",
            log.incidents
        );
        assert!(
            log.incidents.iter().all(|i| i.stage != "pretrain"),
            "pre-training was disturbed: {:?}",
            log.incidents
        );
    }
}

/// A device dies mid-leg while a NaN chunk is also in flight: the
/// re-shard happens inside the leg, the ladder rolls back on top of it,
/// and the four-device pipeline still lands bit-identical to its
/// fault-free self.
#[test]
fn pipeline_device_drop_composes_with_ladder_rollback() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, _) = with_watchdog("oom baseline", || run_pipeline(4, &chaos_cfg()));

    faults::configure("device.oom", "1@14").unwrap();
    faults::configure("kernel.nan", "1@9").unwrap();
    let (faulted, log) = with_watchdog("oom faulted", || run_pipeline(4, &chaos_cfg()));
    faults::clear_all();

    assert_eq!(clean, faulted, "re-shard + rollback diverged from baseline");
    assert_eq!(log.count("device-oom"), 1, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
}

/// The current snapshot is unreadable exactly when a rollback needs it
/// (`ckpt.read`): the supervisor falls back to the previous snapshot with
/// a typed incident instead of panicking, and replay from the older
/// snapshot still lands bit-identical.
#[test]
fn pipeline_corrupt_snapshot_read_falls_back_to_previous() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, _) = with_watchdog("fallback baseline", || run_pipeline(1, &chaos_cfg()));

    // Divergence at fine-tune batch 7 (snapshots at 0 and 5); the read
    // of snapshot 5 fails, so recovery replays from snapshot 0.
    faults::configure("finetune.nan", "1@7").unwrap();
    faults::configure("ckpt.read", "1").unwrap();
    let (faulted, log) = with_watchdog("fallback faulted", || run_pipeline(1, &chaos_cfg()));
    faults::clear_all();

    assert_eq!(clean, faulted, "snapshot fallback diverged from baseline");
    assert_eq!(log.count("snapshot-fallback"), 1, "{:?}", log.incidents);
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
    let fb = log
        .incidents
        .iter()
        .find(|i| i.kind == "snapshot-fallback")
        .unwrap();
    assert!(fb.detail.contains("fell back to batch 0"), "{fb:?}");
}

/// A stalled loader blows the per-chunk deadline: the stream fails typed,
/// the ladder restarts the leg from the snapshot, and the run matches a
/// fault-free run under the same deadline bitwise.
#[test]
fn pipeline_loader_stall_restarts_leg_via_chunk_deadline() {
    let _g = REGISTRY_LOCK.lock();
    let deadline_cfg = || TrainConfig {
        chunk_deadline: Some(Duration::from_millis(60)),
        ..chaos_cfg()
    };
    faults::clear_all();
    let (clean, clean_log) =
        with_watchdog("stall baseline", move || run_pipeline(1, &deadline_cfg()));
    assert!(clean_log.incidents.is_empty(), "{:?}", clean_log.incidents);

    faults::configure("loader.stall", "1@2").unwrap();
    let (faulted, log) = with_watchdog("stall faulted", move || run_pipeline(1, &deadline_cfg()));
    faults::clear_all();

    assert_eq!(clean, faulted, "deadline restart diverged from baseline");
    assert!(log.count("restart") >= 1, "{:?}", log.incidents);
}

/// `cnn.nan` poisons one CNN batch at the model level (before the cursor
/// or parameters advance): the ladder rolls back and the CNN training
/// run completes bit-identical to the fault-free baseline.
#[test]
fn pipeline_cnn_nan_rolls_back_bit_identically() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean, clean_log) = with_watchdog("cnn.nan baseline", run_cnn);
    assert!(clean_log.incidents.is_empty(), "{:?}", clean_log.incidents);

    faults::configure("cnn.nan", "1@4").unwrap();
    let (faulted, log) = with_watchdog("cnn.nan faulted", run_cnn);
    faults::clear_all();

    assert_eq!(clean, faulted, "cnn.nan recovery diverged from baseline");
    assert_eq!(log.count("rollback"), 1, "{:?}", log.incidents);
}

/// Random seeded schedules: every run either completes bit-identical to
/// the fault-free baseline or fails with a typed error — across AE and
/// RBM, with mixed fault sites.
#[test]
fn random_seeded_schedules_complete_or_fail_typed() {
    let _g = REGISTRY_LOCK.lock();
    faults::clear_all();
    let (clean_ae, _) = with_watchdog("sweep ae baseline", run_ae);
    let (clean_rbm, _) = with_watchdog("sweep rbm baseline", run_rbm);

    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        faults::clear_all();
        // 1–3 armed sites with small counts at random offsets.
        for _ in 0..rng.gen_range(1..=3) {
            let site =
                ["loader.read", "loader.panic", "loader.crc", "kernel.nan"][rng.gen_range(0..4)];
            let spec = format!("{}@{}", rng.gen_range(1..=2), rng.gen_range(0..6));
            faults::configure(site, &spec).unwrap();
        }
        let use_rbm = seed % 2 == 1;
        let name = format!("sweep seed {seed}");
        let outcome = with_watchdog(&name, move || {
            if use_rbm {
                std::panic::catch_unwind(run_rbm)
            } else {
                std::panic::catch_unwind(run_ae)
            }
        });
        match outcome {
            Ok((weights, _log)) => {
                let clean = if use_rbm { &clean_rbm } else { &clean_ae };
                assert_eq!(
                    clean, &weights,
                    "seed {seed}: recovered run diverged from baseline"
                );
            }
            Err(payload) => panic!("seed {seed}: run panicked: {payload:?}"),
        }
    }
    faults::clear_all();
}
