//! End-to-end integration tests: the public API trains real models on the
//! synthetic datasets, across crates (data -> sim stream -> kernels ->
//! core).

use micdnn::train::{train_dataset, AeModel, RbmModel, TrainConfig};
use micdnn::{
    AeConfig, DeepBeliefNet, ExecCtx, OptLevel, Rbm, RbmConfig, SparseAutoencoder,
    StackedAutoencoder,
};
use micdnn_data::{Dataset, DigitGenerator, PatchGenerator};

fn digit_data(n: usize, side: usize, seed: u64) -> Dataset {
    let mut gen = DigitGenerator::new(side, seed);
    let mut ds = Dataset::new(gen.matrix(n));
    ds.normalize();
    ds
}

#[test]
fn autoencoder_learns_digits() {
    let ds = digit_data(600, 12, 1);
    let cfg = AeConfig::new(144, 64);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 2));
    let ctx = ExecCtx::native(OptLevel::Improved, 3);
    let tc = TrainConfig {
        learning_rate: 0.3,
        batch_size: 60,
        chunk_rows: 300,
        ..TrainConfig::default()
    };
    let report = train_dataset(&mut model, &ctx, &ds, &tc, 25).unwrap();
    assert!(
        report.final_recon() < 0.3 * report.initial_recon(),
        "autoencoder failed to learn: {} -> {}",
        report.initial_recon(),
        report.final_recon()
    );
    let ae = model.into_inner();
    assert!(ae.w1.all_finite() && ae.w2.all_finite(), "weights diverged");
}

#[test]
fn autoencoder_learns_natural_patches() {
    let mut gen = PatchGenerator::new(12, 5);
    let mut ds = Dataset::new(gen.matrix(800));
    ds.normalize();
    let cfg = AeConfig::new(144, 72);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 6));
    let ctx = ExecCtx::native(OptLevel::Improved, 7);
    let tc = TrainConfig {
        learning_rate: 0.3,
        batch_size: 80,
        chunk_rows: 400,
        ..TrainConfig::default()
    };
    let report = train_dataset(&mut model, &ctx, &ds, &tc, 20).unwrap();
    assert!(
        report.final_recon() < 0.5 * report.initial_recon(),
        "{} -> {}",
        report.initial_recon(),
        report.final_recon()
    );
}

#[test]
fn rbm_learns_binarized_digits() {
    let mut ds = digit_data(400, 12, 11);
    ds.binarize(0.5);
    let cfg = RbmConfig::new(144, 80);
    let mut model = RbmModel::new(Rbm::new(cfg, 12));
    let ctx = ExecCtx::native(OptLevel::Improved, 13);
    let tc = TrainConfig {
        learning_rate: 0.1,
        batch_size: 50,
        chunk_rows: 200,
        ..TrainConfig::default()
    };
    let report = train_dataset(&mut model, &ctx, &ds, &tc, 30).unwrap();
    assert!(
        report.final_recon() < 0.5 * report.initial_recon(),
        "RBM failed to learn: {} -> {}",
        report.initial_recon(),
        report.final_recon()
    );
}

#[test]
fn optimization_rungs_agree_on_training_trajectory() {
    // The paper's premise: the optimizations change speed, not math. Train
    // the same model at every rung and compare final weights.
    let ds = digit_data(200, 10, 21);
    let cfg = AeConfig::new(100, 40);
    let tc = TrainConfig {
        learning_rate: 0.2,
        batch_size: 50,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let train_at = |lvl: OptLevel| {
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 22));
        let ctx = ExecCtx::native(lvl, 23);
        train_dataset(&mut model, &ctx, &ds, &tc, 5).unwrap();
        model.into_inner()
    };
    let reference = train_at(OptLevel::Baseline);
    for lvl in [
        OptLevel::OpenMp,
        OptLevel::OpenMpMkl,
        OptLevel::Improved,
        OptLevel::SequentialBlas,
    ] {
        let trained = train_at(lvl);
        let diff = micdnn_tensor::max_abs_diff(trained.w1.as_slice(), reference.w1.as_slice());
        assert!(
            diff < 2e-2,
            "{lvl:?} diverged from baseline trajectory by {diff}"
        );
    }
}

#[test]
fn rbm_graph_and_serial_schedules_train_identically() {
    let mut ds = digit_data(200, 10, 31);
    ds.binarize(0.5);
    let cfg = RbmConfig::new(100, 50);
    let tc = TrainConfig {
        batch_size: 50,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let run = |graph: bool| {
        let mut model = if graph {
            RbmModel::new(Rbm::new(cfg, 32)).with_graph_schedule()
        } else {
            RbmModel::new(Rbm::new(cfg, 32))
        };
        let ctx = ExecCtx::native(OptLevel::Improved, 33);
        train_dataset(&mut model, &ctx, &ds, &tc, 5).unwrap();
        model.into_inner()
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(
        a.w.as_slice(),
        b.w.as_slice(),
        "schedules must be bit-identical"
    );
}

#[test]
fn stacked_pretraining_produces_usable_codes() {
    let ds = digit_data(400, 12, 41);
    let mut stack = StackedAutoencoder::with_default_config(&[144, 64, 32, 16], 42);
    let ctx = ExecCtx::native(OptLevel::Improved, 43);
    let tc = TrainConfig {
        learning_rate: 0.3,
        batch_size: 50,
        chunk_rows: 200,
        ..TrainConfig::default()
    };
    let reports = stack.pretrain(&ctx, &ds, &tc, 12).unwrap();
    assert_eq!(reports.len(), 3);
    for (i, lr) in reports.iter().enumerate() {
        assert!(
            lr.report.final_recon() < lr.report.initial_recon(),
            "layer {i} got worse"
        );
    }
    let codes = stack.encode(&ctx, ds.matrix().view());
    assert_eq!(codes.shape(), (400, 16));
    assert!(codes.all_finite());

    // Codes must distinguish at least some digit classes: different digits
    // were generated cyclically, so rows 0 and 1 are different classes.
    let d_same = dist(codes.row(0), codes.row(10)); // both class 0
    let d_diff = dist(codes.row(0), codes.row(1)); // class 0 vs class 1
    assert!(
        d_diff > 0.2 * d_same || d_diff > 0.05,
        "codes carry no class signal: same {d_same}, diff {d_diff}"
    );
}

#[test]
fn dbn_pretraining_improves_each_rbm() {
    let mut ds = digit_data(300, 10, 51);
    ds.binarize(0.5);
    let mut dbn = DeepBeliefNet::new(&[100, 60, 30], 52);
    let ctx = ExecCtx::native(OptLevel::Improved, 53);
    let tc = TrainConfig {
        learning_rate: 0.1,
        batch_size: 50,
        chunk_rows: 150,
        ..TrainConfig::default()
    };
    let reports = dbn.pretrain(&ctx, &ds, &tc, 15).unwrap();
    for lr in &reports {
        assert!(lr.report.final_recon() < lr.report.initial_recon());
    }
    let code = dbn.encode(&ctx, ds.matrix().view());
    assert_eq!(code.cols(), 30);
}

fn dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f32>()
        .sqrt()
}
