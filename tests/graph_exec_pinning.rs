//! Bit-identity pinning for the dataflow executor: routing a training run
//! through the task graph (`with_graph_schedule`) must leave *no trace* in
//! the numerics — weights, optimizer/momentum state, and the shared RNG
//! cursor all match the plain serial path byte for byte, at whatever
//! thread count `RAYON_NUM_THREADS` provides.

use micdnn::optim::{Optimizer, Rule, Schedule};
use micdnn::train::{train_dataset, AeModel, RbmModel, TrainConfig, UnsupervisedModel};
use micdnn::{AeConfig, ExecCtx, OptLevel, Rbm, RbmConfig, SparseAutoencoder};
use micdnn_data::{Dataset, DigitGenerator};

fn digit_data(n: usize, side: usize, seed: u64) -> Dataset {
    let mut gen = DigitGenerator::new(side, seed);
    let mut ds = Dataset::new(gen.matrix(n));
    ds.normalize();
    ds
}

/// Runs one AE training job and returns the full serialized state
/// (weights + optimizer slots via `save_state`) and the RNG cursor.
fn ae_run(graph: bool, ds: &Dataset, tc: &TrainConfig) -> (Vec<u8>, (u64, u64)) {
    let cfg = AeConfig::new(64, 25);
    let slots = SparseAutoencoder::optimizer_slots(&cfg);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 11)).with_optimizer(Optimizer::new(
        Rule::Momentum { mu: 0.9 },
        Schedule::Constant(0.1),
        &slots,
    ));
    if graph {
        model = model.with_graph_schedule();
    }
    let ctx = ExecCtx::native(OptLevel::Improved, 11);
    train_dataset(&mut model, &ctx, ds, tc, 4).unwrap();
    let mut bytes = Vec::new();
    model.save_state(&mut bytes).unwrap();
    (bytes, ctx.rng_state())
}

#[test]
fn graph_scheduled_ae_run_is_bit_identical_to_serial() {
    let ds = digit_data(200, 8, 21);
    let tc = TrainConfig {
        learning_rate: 0.1,
        batch_size: 25,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let (serial_bytes, serial_rng) = ae_run(false, &ds, &tc);
    let (graph_bytes, graph_rng) = ae_run(true, &ds, &tc);
    // The AE checkpoint format does not record the scheduling preference,
    // so the *entire* state record must agree byte for byte.
    assert_eq!(
        serial_bytes, graph_bytes,
        "graph-scheduled AE diverged from the serial path"
    );
    assert_eq!(serial_rng, graph_rng, "AE RNG cursor diverged");
}

/// Runs one RBM training job (CD-2 + momentum: the full generalized graph)
/// and returns weights, momentum state and the RNG cursor.
#[allow(clippy::type_complexity)]
fn rbm_run(
    graph: bool,
    ds: &Dataset,
    tc: &TrainConfig,
) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, (u64, u64)) {
    let cfg = RbmConfig::new(64, 25).with_cd_steps(2);
    let mut model = RbmModel::new(Rbm::new(cfg, 13)).with_momentum(0.5);
    if graph {
        model = model.with_graph_schedule();
    }
    let ctx = ExecCtx::native(OptLevel::Improved, 13);
    train_dataset(&mut model, &ctx, ds, tc, 4).unwrap();
    let (_, vw, vb, vc) = model.momentum_parts().expect("momentum attached");
    let (vw, vb, vc) = (vw.to_vec(), vb.to_vec(), vc.to_vec());
    let rng = ctx.rng_state();
    let rbm = model.into_inner();
    (rbm.w.as_slice().to_vec(), vw, vb, vc, rng)
}

#[test]
fn graph_scheduled_rbm_run_is_bit_identical_to_serial() {
    let mut ds = digit_data(200, 8, 22);
    ds.binarize(0.5);
    let tc = TrainConfig {
        learning_rate: 0.05,
        batch_size: 25,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let (sw, svw, svb, svc, srng) = rbm_run(false, &ds, &tc);
    let (gw, gvw, gvb, gvc, grng) = rbm_run(true, &ds, &tc);
    assert_eq!(sw, gw, "graph-scheduled RBM weights diverged");
    assert_eq!(svw, gvw, "momentum velocity (weights) diverged");
    assert_eq!(svb, gvb, "momentum velocity (visible bias) diverged");
    assert_eq!(svc, gvc, "momentum velocity (hidden bias) diverged");
    assert_eq!(srng, grng, "RBM RNG cursor diverged");
}
