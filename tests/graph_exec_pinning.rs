//! Bit-identity pinning for the dataflow executor: routing a training run
//! through the task graph (`with_graph_schedule`) must leave *no trace* in
//! the numerics — weights, optimizer/momentum state, and the shared RNG
//! cursor all match the plain serial path byte for byte, at whatever
//! thread count `RAYON_NUM_THREADS` provides.

use micdnn::optim::{Optimizer, Rule, Schedule};
use micdnn::train::{train_dataset, AeModel, RbmModel, TrainConfig, UnsupervisedModel};
use micdnn::{AeConfig, ExecCtx, FineTuneNet, OptLevel, Rbm, RbmConfig, SparseAutoencoder};
use micdnn_data::{Dataset, DigitGenerator};

fn digit_data(n: usize, side: usize, seed: u64) -> Dataset {
    let mut gen = DigitGenerator::new(side, seed);
    let mut ds = Dataset::new(gen.matrix(n));
    ds.normalize();
    ds
}

/// Runs one AE training job and returns the full serialized state
/// (weights + optimizer slots via `save_state`) and the RNG cursor.
fn ae_run(graph: bool, ds: &Dataset, tc: &TrainConfig) -> (Vec<u8>, (u64, u64)) {
    let cfg = AeConfig::new(64, 25);
    let slots = SparseAutoencoder::optimizer_slots(&cfg);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 11)).with_optimizer(Optimizer::new(
        Rule::Momentum { mu: 0.9 },
        Schedule::Constant(0.1),
        &slots,
    ));
    if graph {
        model = model.with_graph_schedule();
    }
    let ctx = ExecCtx::native(OptLevel::Improved, 11);
    train_dataset(&mut model, &ctx, ds, tc, 4).unwrap();
    let mut bytes = Vec::new();
    model.save_state(&mut bytes).unwrap();
    (bytes, ctx.rng_state())
}

#[test]
fn graph_scheduled_ae_run_is_bit_identical_to_serial() {
    let ds = digit_data(200, 8, 21);
    let tc = TrainConfig {
        learning_rate: 0.1,
        batch_size: 25,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let (serial_bytes, serial_rng) = ae_run(false, &ds, &tc);
    let (graph_bytes, graph_rng) = ae_run(true, &ds, &tc);
    // The AE checkpoint format does not record the scheduling preference,
    // so the *entire* state record must agree byte for byte.
    assert_eq!(
        serial_bytes, graph_bytes,
        "graph-scheduled AE diverged from the serial path"
    );
    assert_eq!(serial_rng, graph_rng, "AE RNG cursor diverged");
}

/// Runs one RBM training job (CD-2 + momentum: the full generalized graph)
/// and returns weights, momentum state and the RNG cursor.
#[allow(clippy::type_complexity)]
fn rbm_run(
    graph: bool,
    ds: &Dataset,
    tc: &TrainConfig,
) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, (u64, u64)) {
    let cfg = RbmConfig::new(64, 25).with_cd_steps(2);
    let mut model = RbmModel::new(Rbm::new(cfg, 13)).with_momentum(0.5);
    if graph {
        model = model.with_graph_schedule();
    }
    let ctx = ExecCtx::native(OptLevel::Improved, 13);
    train_dataset(&mut model, &ctx, ds, tc, 4).unwrap();
    let (_, vw, vb, vc) = model.momentum_parts().expect("momentum attached");
    let (vw, vb, vc) = (vw.to_vec(), vb.to_vec(), vc.to_vec());
    let rng = ctx.rng_state();
    let rbm = model.into_inner();
    (rbm.w.as_slice().to_vec(), vw, vb, vc, rng)
}

#[test]
fn graph_scheduled_rbm_run_is_bit_identical_to_serial() {
    let mut ds = digit_data(200, 8, 22);
    ds.binarize(0.5);
    let tc = TrainConfig {
        learning_rate: 0.05,
        batch_size: 25,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let (sw, svw, svb, svc, srng) = rbm_run(false, &ds, &tc);
    let (gw, gvw, gvb, gvc, grng) = rbm_run(true, &ds, &tc);
    assert_eq!(sw, gw, "graph-scheduled RBM weights diverged");
    assert_eq!(svw, gvw, "momentum velocity (weights) diverged");
    assert_eq!(svb, gvb, "momentum velocity (visible bias) diverged");
    assert_eq!(svc, gvc, "momentum velocity (hidden bias) diverged");
    assert_eq!(srng, grng, "RBM RNG cursor diverged");
}

// ---------------------------------------------------------------------------
// Pre-refactor goldens: the layer-trait rebuild of the AE / CD-k / fine-tune
// builders (`micdnn::layers`) must reproduce the hand-built graphs'
// training outcomes byte-for-byte. These files were generated from the
// hand-rolled node lists before the refactor (UPDATE_GOLDEN=1 rewrites
// them; a diff there is a bit-identity regression, not a format change).
// ---------------------------------------------------------------------------

const AE_GOLDEN: &[u8] = include_bytes!("golden/layer_ae_run.bin");
const RBM_GOLDEN: &[u8] = include_bytes!("golden/layer_rbm_run.bin");
const FT_GOLDEN: &[u8] = include_bytes!("golden/layer_ft_run.bin");

/// With `UPDATE_GOLDEN=1`, rewrites the golden file instead of comparing.
/// Returns true when the caller should skip the assertion.
fn maybe_update(name: &str, bytes: &[u8]) -> bool {
    if std::env::var_os("UPDATE_GOLDEN").is_none() {
        return false;
    }
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, bytes).unwrap();
    eprintln!("updated {path}");
    true
}

fn push_rng(bytes: &mut Vec<u8>, rng: (u64, u64)) {
    bytes.extend_from_slice(&rng.0.to_le_bytes());
    bytes.extend_from_slice(&rng.1.to_le_bytes());
}

fn push_f32s(bytes: &mut Vec<u8>, vals: &[f32]) {
    for v in vals {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
}

#[test]
fn trait_built_ae_graph_reproduces_prerefactor_bytes() {
    // Same job as `graph_scheduled_ae_run_is_bit_identical_to_serial`:
    // momentum optimizer, graph schedule, 4 passes. The record holds the
    // RNG cursor and the full `save_state` serialization (weights +
    // optimizer slots).
    let ds = digit_data(200, 8, 21);
    let tc = TrainConfig {
        learning_rate: 0.1,
        batch_size: 25,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let (state, rng) = ae_run(true, &ds, &tc);
    let mut record = Vec::new();
    push_rng(&mut record, rng);
    record.extend_from_slice(&state);
    if maybe_update("layer_ae_run.bin", &record) {
        return;
    }
    assert_eq!(
        record, AE_GOLDEN,
        "trait-built AE graph diverged from the pre-refactor hand-built run"
    );
}

#[test]
fn trait_built_cdk_graph_reproduces_prerefactor_bytes() {
    // CD-2 with momentum through the graph schedule: weights, all three
    // velocity buffers, and the RNG cursor.
    let mut ds = digit_data(200, 8, 22);
    ds.binarize(0.5);
    let tc = TrainConfig {
        learning_rate: 0.05,
        batch_size: 25,
        chunk_rows: 100,
        ..TrainConfig::default()
    };
    let (w, vw, vb, vc, rng) = rbm_run(true, &ds, &tc);
    let mut record = Vec::new();
    push_rng(&mut record, rng);
    for part in [&w, &vw, &vb, &vc] {
        push_f32s(&mut record, part);
    }
    if maybe_update("layer_rbm_run.bin", &record) {
        return;
    }
    assert_eq!(
        record, RBM_GOLDEN,
        "trait-built CD-k graph diverged from the pre-refactor hand-built run"
    );
}

#[test]
fn trait_built_finetune_graph_reproduces_prerefactor_bytes() {
    // Graph-scheduled fine-tuning of a 144 -> 24 -> 12 stack + softmax
    // head: per-epoch losses, every parameter tensor, and the RNG cursor.
    let mut gen = DigitGenerator::new(12, 12);
    let mut ds = Dataset::new(gen.matrix(60));
    ds.normalize();
    let labels: Vec<usize> = (0..60).map(|i| i % 10).collect();
    let ctx = ExecCtx::native(OptLevel::Improved, 14);
    let mut net = FineTuneNet::random(&[144, 24, 12], 10, 13).with_graph_schedule();
    let losses = net.fit(&ctx, ds.matrix().view(), &labels, 20, 0.4, 4);

    let mut record = Vec::new();
    push_rng(&mut record, ctx.rng_state());
    for loss in &losses {
        record.extend_from_slice(&loss.to_le_bytes());
    }
    for (w, b) in net.layer_params() {
        push_f32s(&mut record, w.as_slice());
        push_f32s(&mut record, b);
    }
    push_f32s(&mut record, net.softmax.w.as_slice());
    push_f32s(&mut record, &net.softmax.b);
    if maybe_update("layer_ft_run.bin", &record) {
        return;
    }
    assert_eq!(
        record, FT_GOLDEN,
        "trait-built fine-tune graph diverged from the pre-refactor hand-built run"
    );
}
