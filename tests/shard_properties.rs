//! Property tests for multi-device batch sharding: for any device count,
//! batch geometry, canonical-block count and link parameterization, the
//! data-parallel step shards the mini-batch, runs per-device
//! forward/backward passes, and merges the per-device partial gradients
//! in canonical block order — landing *bitwise* on the single-device
//! result. The link and sync models price time; they must never touch
//! the numerics.

use micdnn::exec::OptLevel;
use micdnn::train::UnsupervisedModel;
use micdnn::{
    block_bounds, AeConfig, DataParallelAe, DataParallelRbm, ExecCtx, MultiDevConfig, Rbm,
    RbmConfig, SparseAutoencoder,
};
use micdnn_sim::{Link, SyncModel};
use micdnn_tensor::Mat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batch(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(0.1..0.9))
}

/// Runs `batches` data-parallel AE steps and returns the trained model.
#[allow(clippy::too_many_arguments)]
fn train_ae(
    devices: usize,
    blocks: usize,
    sync: SyncModel,
    link: Link,
    vis: usize,
    hid: usize,
    rows: usize,
    batches: usize,
    seed: u64,
) -> SparseAutoencoder {
    let cfg = MultiDevConfig::new(devices)
        .with_blocks(blocks)
        .with_sync(sync)
        .with_link(link);
    let ae = SparseAutoencoder::new(AeConfig::new(vis, hid), seed);
    let mut model = DataParallelAe::new(ae, cfg);
    let ctx = ExecCtx::native(OptLevel::Improved, seed ^ 0x5EED);
    model.prepare(rows);
    for i in 0..batches {
        let x = batch(rows, vis, seed.wrapping_add(100 + i as u64));
        model.train_batch(&ctx, x.view(), 0.2);
    }
    model.into_inner()
}

/// Runs `batches` data-parallel CD steps and returns the trained RBM.
#[allow(clippy::too_many_arguments)]
fn train_rbm(
    devices: usize,
    blocks: usize,
    sync: SyncModel,
    link: Link,
    vis: usize,
    hid: usize,
    rows: usize,
    batches: usize,
    cd: usize,
    seed: u64,
) -> Rbm {
    let cfg = MultiDevConfig::new(devices)
        .with_blocks(blocks)
        .with_sync(sync)
        .with_link(link);
    let mut rbm_cfg = RbmConfig::new(vis, hid);
    rbm_cfg.cd_steps = cd;
    let mut model = DataParallelRbm::new(Rbm::new(rbm_cfg, seed), cfg);
    let ctx = ExecCtx::native(OptLevel::Improved, seed ^ 0xCD);
    model.prepare(rows);
    for i in 0..batches {
        let x = batch(rows, vis, seed.wrapping_add(500 + i as u64));
        model.train_batch(&ctx, x.view(), 0.1);
    }
    model.into_inner()
}

fn sync_of(ring: bool) -> SyncModel {
    if ring {
        SyncModel::RingAllReduce
    } else {
        SyncModel::ParameterServer
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `block_bounds` is a contiguous, balanced, order-preserving
    /// partition for every geometry — the foundation the fixed-order
    /// merge stands on.
    #[test]
    fn block_bounds_is_a_balanced_partition(
        total in 0usize..500,
        parts in 1usize..17,
    ) {
        let bounds = block_bounds(total, parts);
        prop_assert_eq!(bounds.len(), parts);
        let mut cursor = 0usize;
        let base = total / parts;
        for &(lo, hi) in &bounds {
            prop_assert_eq!(lo, cursor, "partition must be contiguous");
            prop_assert!(hi >= lo);
            let size = hi - lo;
            prop_assert!(
                size == base || size == base + 1,
                "unbalanced part {size} for total {total} / {parts}"
            );
            cursor = hi;
        }
        prop_assert_eq!(cursor, total, "partition must cover the batch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shard -> per-device forward/backward -> fixed-order merge equals
    /// the unsharded gradient step exactly, for any device count, batch
    /// geometry, block count, sync strategy and link parameters.
    #[test]
    fn sharded_ae_step_is_bitwise_unsharded(
        devices in 2usize..=8,
        rows in 1usize..32,
        vis in 3usize..12,
        hid in 2usize..7,
        blocks in 1usize..10,
        ring in any::<bool>(),
        latency in 0.0f64..1e-3,
        gbs in 0.5f64..8.0,
        seed in any::<u64>(),
    ) {
        let link = Link { latency_s: latency, wire_gbs: gbs, host_pipeline_gbs: gbs };
        let single = train_ae(
            1, blocks, sync_of(ring), link, vis, hid, rows, 2, seed,
        );
        let multi = train_ae(
            devices, blocks, sync_of(ring), link, vis, hid, rows, 2, seed,
        );
        prop_assert_eq!(single.w1.as_slice(), multi.w1.as_slice());
        prop_assert_eq!(single.w2.as_slice(), multi.w2.as_slice());
        prop_assert_eq!(single.b1, multi.b1);
        prop_assert_eq!(single.b2, multi.b2);
    }

    /// The stochastic path holds too: CD-k's per-block sampling is
    /// counter-addressed, so sharding never shifts a stream and the
    /// merged statistics match the unsharded run bit for bit.
    #[test]
    fn sharded_rbm_step_is_bitwise_unsharded(
        devices in 2usize..=6,
        rows in 1usize..24,
        vis in 3usize..10,
        hid in 2usize..7,
        blocks in 1usize..8,
        cd in 1usize..3,
        ring in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let link = Link::pcie_gen2();
        let single = train_rbm(
            1, blocks, sync_of(ring), link, vis, hid, rows, 2, cd, seed,
        );
        let multi = train_rbm(
            devices, blocks, sync_of(ring), link, vis, hid, rows, 2, cd, seed,
        );
        prop_assert_eq!(single.w.as_slice(), multi.w.as_slice());
        prop_assert_eq!(single.b_vis, multi.b_vis);
        prop_assert_eq!(single.c_hid, multi.c_hid);
    }

    /// Degenerate shards: more devices than examples (and than blocks)
    /// leaves some devices idle without perturbing the result.
    #[test]
    fn more_devices_than_rows_is_bitwise_unsharded(
        devices in 4usize..=12,
        rows in 1usize..4,
        blocks in 1usize..6,
        seed in any::<u64>(),
    ) {
        let link = Link::pcie_gen2();
        let single = train_ae(
            1, blocks, SyncModel::RingAllReduce, link, 6, 4, rows, 3, seed,
        );
        let multi = train_ae(
            devices, blocks, SyncModel::RingAllReduce, link, 6, 4, rows, 3, seed,
        );
        prop_assert_eq!(single.w1.as_slice(), multi.w1.as_slice());
        prop_assert_eq!(single.w2.as_slice(), multi.w2.as_slice());
        prop_assert_eq!(single.b1, multi.b1);
        prop_assert_eq!(single.b2, multi.b2);
    }
}
