//! The paper's central claim (Table I): each optimization rung —
//! baseline → OpenMP → OpenMP+MKL → improved (fusion, resident data,
//! double-buffered streaming) — is *strictly* faster than the last on the
//! Xeon Phi. This suite pins that ordering on the §IV.A-scale workload
//! (4096-wide layers, thousands of examples) via the analytic pricer,
//! which replicates the trainer's chunk/batch loop exactly.

use micdnn::{estimate, Algo, OptLevel, Workload};
use micdnn_sim::{Link, Platform};

fn workload(algo: Algo) -> Workload {
    Workload {
        algo,
        n_visible: 1024,
        n_hidden: 4096,
        examples: 10_000,
        batch: 1000,
        chunk_rows: 1000,
        passes: 4,
    }
}

fn ladder_times(algo: Algo, platform: Platform) -> Vec<(OptLevel, f64)> {
    OptLevel::ladder()
        .into_iter()
        .map(|lvl| {
            let est = estimate(
                lvl,
                platform.clone(),
                Link::pcie_gen2(),
                true,
                &workload(algo),
            );
            (lvl, est.total_secs)
        })
        .collect()
}

fn assert_strictly_decreasing(times: &[(OptLevel, f64)]) {
    for pair in times.windows(2) {
        let (prev_lvl, prev) = pair[0];
        let (lvl, t) = pair[1];
        assert!(
            t < prev,
            "{lvl:?} ({t:.3}s) not strictly faster than {prev_lvl:?} ({prev:.3}s)"
        );
        assert!(t.is_finite() && t > 0.0, "{lvl:?} priced at {t}");
    }
}

#[test]
fn autoencoder_ladder_strictly_decreases_on_phi() {
    let times = ladder_times(Algo::Autoencoder, Platform::xeon_phi());
    assert_strictly_decreasing(&times);
}

#[test]
fn rbm_ladder_strictly_decreases_on_phi() {
    let times = ladder_times(Algo::Rbm, Platform::xeon_phi());
    assert_strictly_decreasing(&times);
}

#[test]
fn ladder_end_to_end_speedup_is_large() {
    // Table I reports two-plus orders of magnitude between the serial
    // baseline and the fully improved implementation. The model should
    // agree at least on the order of magnitude.
    let times = ladder_times(Algo::Autoencoder, Platform::xeon_phi());
    let baseline = times.first().unwrap().1;
    let improved = times.last().unwrap().1;
    assert!(
        baseline / improved > 50.0,
        "speedup only {:.1}x (baseline {baseline:.1}s, improved {improved:.1}s)",
        baseline / improved
    );
}

#[test]
fn ladder_ordering_holds_on_host_cpu_too() {
    // The same monotone ordering must hold on the modeled Xeon host —
    // the optimizations are not Phi-only tricks.
    let times = ladder_times(Algo::Autoencoder, Platform::cpu_socket());
    assert_strictly_decreasing(&times);
}
