//! Pins the analytic (model-only) op streams to recorded executions.
//!
//! The figure harness sweeps paper-scale workloads without executing them,
//! using `micdnn::analytic`'s enumerated op streams. These tests record
//! the actual `OpCost` sequence of executed training steps and require it
//! to equal the enumeration — if the implementations drift apart, every
//! simulated figure would silently stop describing the real code, so this
//! must fail loudly instead.

use micdnn::analytic::{ae_batch_ops, rbm_cd1_ops};
use micdnn::autoencoder::{AeConfig, AeScratch, SparseAutoencoder};
use micdnn::exec::{ExecCtx, OptLevel};
use micdnn::rbm::{Rbm, RbmConfig, RbmScratch};
use micdnn_kernels::OpCost;
use micdnn_tensor::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batch(b: usize, v: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    Mat::from_fn(b, v, |_, _| rng.gen_range(0.1..0.9))
}

fn all_levels() -> [OptLevel; 5] {
    [
        OptLevel::Baseline,
        OptLevel::OpenMp,
        OptLevel::OpenMpMkl,
        OptLevel::Improved,
        OptLevel::SequentialBlas,
    ]
}

fn assert_streams_equal(recorded: &[OpCost], analytic: &[OpCost], what: &str) {
    assert_eq!(
        recorded.len(),
        analytic.len(),
        "{what}: op count differs (recorded {}, analytic {})",
        recorded.len(),
        analytic.len()
    );
    for (i, (r, a)) in recorded.iter().zip(analytic).enumerate() {
        assert_eq!(
            r, a,
            "{what}: op {i} differs\nrecorded: {r:?}\nanalytic: {a:?}"
        );
    }
}

#[test]
fn ae_train_batch_stream_matches_analytic() {
    for lvl in all_levels() {
        for (v, h, b) in [(32usize, 16usize, 10usize), (17, 23, 7), (64, 8, 32)] {
            let cfg = AeConfig::new(v, h);
            let mut ae = SparseAutoencoder::new(cfg, 1);
            let ctx = ExecCtx::native(lvl, 2);
            let mut scratch = AeScratch::new(&cfg, b);
            let x = batch(b, v, 3);
            ctx.start_recording();
            ae.train_batch(&ctx, x.view(), &mut scratch, 0.1);
            let recorded = ctx.stop_recording();
            let analytic = ae_batch_ops(v, h, b, lvl.backend());
            assert_streams_equal(&recorded, &analytic, &format!("AE {lvl:?} {v}x{h}x{b}"));
        }
    }
}

#[test]
fn rbm_cd1_stream_matches_analytic() {
    for lvl in all_levels() {
        for (v, h, b) in [(24usize, 12usize, 8usize), (15, 31, 9)] {
            let cfg = RbmConfig::new(v, h);
            let mut rbm = Rbm::new(cfg, 1);
            let ctx = ExecCtx::native(lvl, 2);
            let mut scratch = RbmScratch::new(&cfg, b);
            let mut x = batch(b, v, 3);
            x.map_inplace(|p| if p > 0.5 { 1.0 } else { 0.0 });
            ctx.start_recording();
            rbm.cd_step(&ctx, x.view(), &mut scratch, 0.1);
            let recorded = ctx.stop_recording();
            let analytic = rbm_cd1_ops(v, h, b, lvl.backend());
            assert_streams_equal(&recorded, &analytic, &format!("RBM {lvl:?} {v}x{h}x{b}"));
        }
    }
}

#[test]
fn graph_scheduled_cd1_has_same_multiset_of_ops() {
    // The dependency graph reorders independent ops but must execute
    // exactly the same set of kernels.
    let (v, h, b) = (24usize, 12usize, 8usize);
    let cfg = RbmConfig::new(v, h);
    let mut rbm = Rbm::new(cfg, 1);
    let ctx = ExecCtx::native(OptLevel::Improved, 2);
    let mut scratch = RbmScratch::new(&cfg, b);
    let mut x = batch(b, v, 3);
    x.map_inplace(|p| if p > 0.5 { 1.0 } else { 0.0 });
    ctx.start_recording();
    micdnn::cd_step_graph(&mut rbm, &ctx, x.view(), &mut scratch, 0.1);
    let mut recorded = ctx.stop_recording();
    let mut analytic = rbm_cd1_ops(v, h, b, OptLevel::Improved.backend());
    let key = |c: &OpCost| {
        (
            c.flops,
            c.bytes_read,
            c.bytes_written,
            format!("{:?}", c.kind),
        )
    };
    recorded.sort_by_key(key);
    analytic.sort_by_key(key);
    assert_eq!(recorded, analytic);
}

#[test]
fn priced_execution_equals_estimate_for_matching_config() {
    // Executing a small simulated run must land on exactly the same
    // simulated seconds as the model-only estimate for the same workload
    // (compute only; the trainer's stream adds transfer).
    use micdnn::analytic::{estimate, Algo, Workload};
    use micdnn::train::{train_dataset, AeModel, TrainConfig};
    use micdnn_data::Dataset;
    use micdnn_sim::{Link, Platform};

    let (v, h, b) = (32usize, 24usize, 20usize);
    let examples = 120usize;
    let w = Workload {
        algo: Algo::Autoencoder,
        n_visible: v,
        n_hidden: h,
        examples,
        batch: b,
        chunk_rows: 60,
        passes: 1,
    };
    let link = Link {
        latency_s: 0.5e-3,
        wire_gbs: 0.5,
        host_pipeline_gbs: 0.5,
    };
    let est = estimate(OptLevel::Improved, Platform::xeon_phi(), link, true, &w);

    let cfg = AeConfig::new(v, h);
    let mut model = AeModel::new(SparseAutoencoder::new(cfg, 1));
    let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 2);
    let ds = Dataset::new(batch(examples, v, 3));
    let tc = TrainConfig {
        batch_size: b,
        chunk_rows: 60,
        link,
        ..TrainConfig::default()
    };
    let report = train_dataset(&mut model, &ctx, &ds, &tc, 1).unwrap();

    // The executed clock rounds each op to integer picoseconds; the
    // estimate is pure f64 — allow that rounding headroom and nothing more.
    let rel = (report.sim_total_secs - est.total_secs).abs() / est.total_secs;
    assert!(
        rel < 1e-6,
        "estimate {} vs executed {} (rel {rel})",
        est.total_secs,
        report.sim_total_secs
    );
    assert!((report.stream.transfer_secs - est.transfer_secs).abs() < 1e-9);
    assert!((report.stream.stall_secs - est.stall_secs).abs() < 1e-6);
}
