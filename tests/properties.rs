//! Property-based tests (proptest) on the workspace's core invariants.

use micdnn::analytic::{estimate, Algo, Workload};
use micdnn::check_autoencoder;
use micdnn::exec::OptLevel;
use micdnn::AeConfig;
use micdnn::SparseAutoencoder;
use micdnn_kernels::{gemm, naive, Par};
use micdnn_sim::{CostModel, Link, Platform, SimClock};
use micdnn_tensor::{max_abs_diff, Mat};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The blocked parallel GEMM agrees with the scalar reference for any
    /// shape, transpose combination and alpha/beta.
    #[test]
    fn gemm_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in any::<bool>(),
        tb in any::<bool>(),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = if ta { Mat::from_fn(k, m, |_, _| rng.gen_range(-1.0..1.0)) }
                else { Mat::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0)) };
        let b = if tb { Mat::from_fn(n, k, |_, _| rng.gen_range(-1.0..1.0)) }
                else { Mat::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0)) };
        let c0 = Mat::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));

        let mut c_ref = c0.clone();
        naive::gemm_ref(alpha, a.view(), ta, b.view(), tb, beta, &mut c_ref.view_mut());
        let mut c_fast = c0.clone();
        gemm(Par::Rayon, alpha, a.view(), ta, b.view(), tb, beta, &mut c_fast.view_mut());

        let tol = 1e-4 * (k as f32).sqrt().max(1.0) * (alpha.abs() + beta.abs() + 1.0);
        prop_assert!(
            max_abs_diff(c_fast.as_slice(), c_ref.as_slice()) < tol,
            "gemm deviates beyond {tol}"
        );
    }

    /// Back-propagation agrees with finite differences for random
    /// hyper-parameters.
    #[test]
    fn ae_gradients_match_finite_differences(
        v in 3usize..10,
        h in 2usize..8,
        b in 2usize..10,
        beta in 0.0f32..1.0,
        lambda in 0.0f32..0.01,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let cfg = AeConfig {
            n_visible: v,
            n_hidden: h,
            weight_decay: lambda,
            sparsity_target: 0.1,
            sparsity_weight: beta,
        };
        let ae = SparseAutoencoder::new(cfg, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let x = Mat::from_fn(b, v, |_, _| rng.gen_range(0.15..0.85));
        let r = check_autoencoder(&ae, x.view(), 4, 5e-3, seed ^ 0x1234);
        prop_assert!(
            r.passes(5e-2),
            "gradient check failed: max rel err {} (v={v} h={h} b={b} beta={beta} lambda={lambda})",
            r.max_rel_err
        );
    }

    /// Cost-model prices are finite, non-negative, and monotone in core
    /// count for threaded execution.
    #[test]
    fn cost_model_sane(
        m in 1usize..2000,
        n in 1usize..2000,
        k in 1usize..2000,
        blas in any::<bool>(),
    ) {
        let op = micdnn_kernels::OpCost::gemm(m, n, k, blas);
        let mut last = f64::INFINITY;
        for cores in [1u32, 4, 16, 60] {
            let model = CostModel::new(Platform::xeon_phi_cores(cores));
            let t = model.price(&op, true);
            prop_assert!(t.is_finite() && t > 0.0);
            prop_assert!(t <= last * 1.000001, "more cores made it slower");
            last = t;
        }
        // Sequential price independent of platform core count.
        let a = CostModel::new(Platform::xeon_phi_cores(1)).price(&op, false);
        let b = CostModel::new(Platform::xeon_phi()).price(&op, false);
        prop_assert!((a - b).abs() < 1e-15);
    }

    /// The workload estimator is monotone in examples and never faster
    /// without double buffering.
    #[test]
    fn estimate_monotone_and_buffering_helps(
        v in 8usize..128,
        h in 8usize..128,
        batch in 1usize..64,
        chunks in 1usize..6,
    ) {
        let chunk_rows = (batch * 2).max(8);
        let w1 = Workload {
            algo: Algo::Rbm,
            n_visible: v,
            n_hidden: h,
            examples: chunk_rows * chunks,
            batch,
            chunk_rows,
            passes: 1,
        };
        let w2 = Workload { examples: w1.examples * 2, ..w1 };
        let link = Link { latency_s: 1e-4, wire_gbs: 0.01, host_pipeline_gbs: 0.01 };
        let lvl = OptLevel::Improved;
        let p = Platform::xeon_phi();
        let e1 = estimate(lvl, p.clone(), link, true, &w1);
        let e2 = estimate(lvl, p.clone(), link, true, &w2);
        prop_assert!(e2.total_secs >= e1.total_secs);
        let naive_run = estimate(lvl, p, link, false, &w1);
        prop_assert!(e1.total_secs <= naive_run.total_secs + 1e-12);
        prop_assert!(e1.compute_secs > 0.0 && e1.transfer_secs > 0.0);
    }

    /// The sim clock never goes backwards and sums exactly.
    #[test]
    fn clock_accumulates(steps in proptest::collection::vec(0.0f64..0.1, 1..50)) {
        let clock = SimClock::new();
        let mut total = 0.0;
        for &s in &steps {
            clock.advance(s);
            total += s;
            prop_assert!(clock.now() >= 0.0);
        }
        prop_assert!((clock.now() - total).abs() < 1e-6 * steps.len() as f64 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random DAGs: the critical path is never longer than the serial sum
    /// and never shorter than the longest single node.
    #[test]
    fn task_graph_critical_path_bounds(
        n_nodes in 1usize..12,
        edge_seed in any::<u64>(),
        sizes in proptest::collection::vec(1000usize..100_000, 1..12),
    ) {
        use micdnn::graph::TaskGraph;
        use micdnn::exec::ExecCtx;
        use rand::{Rng, SeedableRng};

        let n = n_nodes.min(sizes.len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(edge_seed);
        let ctx = ExecCtx::simulated(OptLevel::Improved, Platform::xeon_phi(), 1);
        let mut g: TaskGraph<'_, Vec<f32>> = TaskGraph::new();
        g.allow_opaque();
        #[allow(clippy::needless_range_loop)] // i doubles as the node id
        for i in 0..n {
            // Random subset of earlier nodes as dependencies.
            let deps: Vec<usize> = (0..i).filter(|_| rng.gen_bool(0.4)).collect();
            let len = sizes[i];
            g.add("node", &deps, move |ctx, s: &mut Vec<f32>| {
                let end = len.min(s.len());
                ctx.scale(1.0001, &mut s[..end]);
            });
        }
        let mut state = vec![1.0f32; 100_000];
        let run = g.execute(&ctx, &mut state);
        let max_node = run.durations.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(run.critical_path <= run.serial_time + 1e-12);
        prop_assert!(run.critical_path >= max_node - 1e-12);
        prop_assert!((ctx.sim_time() - run.critical_path).abs() < 1e-9);
    }

    /// Dataset normalization always lands in [0.1, 0.9] and binarization in
    /// {0, 1}, for any input data.
    #[test]
    fn dataset_transforms_bounded(
        rows in 1usize..30,
        cols in 1usize..20,
        scale in 0.01f32..100.0,
        offset in -50.0f32..50.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Mat::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0) * scale + offset);
        let mut ds = micdnn_data::Dataset::new(m);
        ds.normalize();
        for &x in ds.matrix().as_slice() {
            prop_assert!((0.1 - 1e-3..=0.9 + 1e-3).contains(&x), "escaped range: {x}");
            prop_assert!(x.is_finite());
        }
        ds.binarize(0.5);
        for &x in ds.matrix().as_slice() {
            prop_assert!(x == 0.0 || x == 1.0);
        }
    }

    /// Chunking a dataset preserves every row in order.
    #[test]
    fn chunking_preserves_rows(rows in 1usize..50, cols in 1usize..10, chunk in 1usize..20) {
        let m = Mat::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
        let ds = micdnn_data::Dataset::new(m.clone());
        let chunks = ds.into_chunks(chunk);
        let mut row = 0usize;
        for ch in &chunks {
            prop_assert_eq!(ch.cols(), cols);
            for r in 0..ch.rows() {
                prop_assert_eq!(ch.row(r), m.row(row));
                row += 1;
            }
        }
        prop_assert_eq!(row, rows);
    }
}
