//! Integration tests for the extension surface (optimizers, batch
//! methods, PCD, fine-tuning, persistence, metrics, hybrid) through the
//! public API — everything a downstream user would touch beyond the
//! paper's core loop.

use micdnn::batch_opt::{conjugate_gradient, lbfgs, AeObjective, BatchOptOptions};
use micdnn::hybrid::{HybridAeTrainer, HybridConfig};
use micdnn::train::{train_dataset, AeModel, TrainConfig};
use micdnn::{
    activation_stats, load_autoencoder_file, reconstruction_stats, save_autoencoder_file, AeConfig,
    AeScratch, ExecCtx, FineTuneNet, OptLevel, Optimizer, Rbm, RbmConfig, RbmScratch, Rule,
    Schedule, SparseAutoencoder, StackedAutoencoder,
};
use micdnn_data::{Dataset, DigitGenerator};

fn digits(n: usize, side: usize, seed: u64) -> Dataset {
    let mut gen = DigitGenerator::new(side, seed);
    let mut ds = Dataset::new(gen.matrix(n));
    ds.normalize();
    ds
}

#[test]
fn momentum_with_decay_schedule_converges_faster_than_plain_sgd_early() {
    let ds = digits(300, 10, 1);
    let cfg = AeConfig::new(100, 40);
    let tc = TrainConfig {
        batch_size: 50,
        chunk_rows: 100,
        learning_rate: 0.2,
        ..TrainConfig::default()
    };
    let run = |opt: Option<Optimizer>| {
        let mut model = AeModel::new(SparseAutoencoder::new(cfg, 2));
        if let Some(o) = opt {
            model = model.with_optimizer(o);
        }
        let ctx = ExecCtx::native(OptLevel::Improved, 3);
        train_dataset(&mut model, &ctx, &ds, &tc, 6)
            .unwrap()
            .final_recon()
    };
    let plain = run(None);
    let momentum = run(Some(Optimizer::new(
        Rule::Momentum { mu: 0.8 },
        Schedule::Constant(0.2),
        &SparseAutoencoder::optimizer_slots(&cfg),
    )));
    // With the same rate and budget, momentum should be at least
    // competitive (usually clearly better on this smooth objective).
    assert!(
        momentum < plain * 1.1,
        "momentum {momentum} much worse than plain {plain}"
    );
}

#[test]
fn lbfgs_beats_sgd_per_update_on_small_full_batch() {
    // The paper's §III trade-off: a batch method makes far more progress
    // per update (while each update costs much more compute).
    let ds = digits(60, 8, 4);
    let cfg = AeConfig::new(64, 20).without_sparsity();
    let ctx = ExecCtx::native(OptLevel::Improved, 5);

    // 15 L-BFGS iterations.
    let ae = SparseAutoencoder::new(cfg, 6);
    let mut obj = AeObjective::new(ae, &ctx, ds.matrix().view());
    let mut x = obj.params();
    let opts = BatchOptOptions {
        max_iters: 15,
        ..Default::default()
    };
    let report = lbfgs(&mut obj, &mut x, 6, &opts);

    // 15 full-batch SGD steps at a generous rate.
    let mut sgd_model = SparseAutoencoder::new(cfg, 6);
    let mut scratch = AeScratch::new(&cfg, 60);
    let mut sgd_cost = f64::INFINITY;
    for _ in 0..15 {
        sgd_cost = sgd_model
            .train_batch(&ctx, ds.matrix().view(), &mut scratch, 0.5)
            .total();
    }
    assert!(
        report.final_cost() < sgd_cost,
        "L-BFGS {} should beat SGD {} per update",
        report.final_cost(),
        sgd_cost
    );
}

#[test]
fn cg_trains_autoencoder_through_objective() {
    let ds = digits(50, 8, 7);
    let cfg = AeConfig::new(64, 16);
    let ctx = ExecCtx::native(OptLevel::Improved, 8);
    let ae = SparseAutoencoder::new(cfg, 9);
    let mut obj = AeObjective::new(ae, &ctx, ds.matrix().view());
    let mut x = obj.params();
    let report = conjugate_gradient(
        &mut obj,
        &mut x,
        &BatchOptOptions {
            max_iters: 25,
            ..Default::default()
        },
    );
    assert!(report.final_cost() < 0.7 * report.initial_cost());
    assert!(obj.into_model().w1.all_finite());
}

#[test]
fn pcd_trains_over_chunks() {
    let mut ds = digits(200, 10, 10);
    ds.binarize(0.5);
    let cfg = RbmConfig::new(100, 60);
    let mut rbm = Rbm::new(cfg, 11);
    let ctx = ExecCtx::native(OptLevel::Improved, 12);
    let mut scratch = RbmScratch::new(&cfg, 50);
    let before = rbm.reconstruction_error(&ctx, ds.batch(0, 50), &mut scratch);
    for _ in 0..20 {
        let mut lo = 0;
        while lo < ds.len() {
            let hi = (lo + 50).min(ds.len());
            rbm.pcd_step(&ctx, ds.batch(lo, hi), &mut scratch, 0.05);
            lo = hi;
        }
    }
    let after = rbm.reconstruction_error(&ctx, ds.batch(0, 50), &mut scratch);
    assert!(after < before, "{before} -> {after}");
}

#[test]
fn full_pipeline_pretrain_finetune_save_load_metrics() {
    let ds = digits(300, 12, 13);
    let labels: Vec<usize> = (0..300).map(|i| i % 10).collect();
    let ctx = ExecCtx::native(OptLevel::Improved, 14);
    let tc = TrainConfig {
        batch_size: 50,
        chunk_rows: 150,
        learning_rate: 0.3,
        ..TrainConfig::default()
    };

    // Pre-train.
    let mut stack = StackedAutoencoder::with_default_config(&[144, 64, 32], 15);
    stack.pretrain(&ctx, &ds, &tc, 8).unwrap();

    // Metrics on the first layer.
    let first = &stack.layers()[0];
    let mut scratch = AeScratch::new(first.config(), 300);
    let recon = reconstruction_stats(first, &ctx, ds.matrix().view(), &mut scratch);
    assert!(recon.psnr_db > 5.0, "PSNR {} too low", recon.psnr_db);
    let acts = activation_stats(first, &ctx, ds.matrix().view());
    assert!(
        acts.dead_units < first.config().n_hidden / 2,
        "{} of {} units dead",
        acts.dead_units,
        first.config().n_hidden
    );

    // Persist + reload the first layer; metrics must be identical.
    let path = std::env::temp_dir().join(format!("micdnn-ext-{}.bin", std::process::id()));
    save_autoencoder_file(first, &path).unwrap();
    let reloaded = load_autoencoder_file(&path).unwrap();
    let recon2 = reconstruction_stats(&reloaded, &ctx, ds.matrix().view(), &mut scratch);
    assert_eq!(recon.mse, recon2.mse);
    std::fs::remove_file(&path).ok();

    // Fine-tune and check we beat chance comfortably.
    let mut net = FineTuneNet::from_stack(&stack, 10, 16);
    net.fit(&ctx, ds.matrix().view(), &labels, 50, 0.5, 15);
    let acc = net.accuracy(&ctx, ds.matrix().view(), &labels);
    assert!(acc > 0.3, "accuracy {acc} barely above 10% chance");
}

#[test]
fn hybrid_trainer_matches_plain_training_quality() {
    let ds = digits(200, 10, 17);
    let cfg = AeConfig::new(100, 40);
    let mut ae = SparseAutoencoder::new(cfg, 18);
    let hcfg = HybridConfig::paper_hardware(0.75);
    let mut trainer = HybridAeTrainer::new(&ae, OptLevel::Improved, &hcfg, 50, 19);
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    for pass in 0..15 {
        let mut lo = 0;
        while lo < ds.len() {
            let hi = (lo + 50).min(ds.len());
            let e = trainer.train_batch(&mut ae, ds.batch(lo, hi), 0.3);
            if pass == 0 && lo == 0 {
                first = e;
            }
            last = e;
            lo = hi;
        }
    }
    assert!(
        last < 0.5 * first,
        "hybrid training failed: {first} -> {last}"
    );
    assert!(trainer.combined_secs > 0.0);
    // Both simulated sides actually did work.
    assert!(trainer.phi_ctx.sim_time() > 0.0);
    assert!(trainer.host_ctx.sim_time() > 0.0);
}
